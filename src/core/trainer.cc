#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "coll/nccl.h"
#include "core/evaluate.h"
#include "core/progress_board.h"
#include "core/seasgd_math.h"
#include "core/sharded_buffer.h"
#include "data/loader.h"
#include "dl/param_vector.h"
#include "fault/injector.h"
#include "minimpi/minimpi.h"
#include "smb/client.h"
#include "smb/server.h"

namespace shmcaffe::core {
namespace {

constexpr smb::ShmKey kProgressKeyOffset = 1'000'000;

/// The Fig. 6 update-thread state: one per group root.
struct ExchangeState {
  std::mutex mutex;
  std::condition_variable cv;
  bool pending = false;  // a weight increment awaits flushing to the SMB
  bool stopping = false;
  std::vector<float> delta;
};

struct WorkerShared {
  const DistTrainOptions* options = nullptr;
  const data::SynthImageDataset* train_set = nullptr;
  std::vector<smb::SmbServer*> servers;  // shard the global buffer (>= 1)
  minimpi::Context* mpi = nullptr;
  std::vector<std::unique_ptr<coll::DeviceGroup>>* groups = nullptr;
  std::int64_t target_iterations = 0;
  int lr_step_iterations = 0;
  smb::ShmKey base_key = 0;
  std::atomic<std::int64_t> total_iterations{0};
  std::vector<std::int64_t> final_iterations;  // one slot per worker
  std::vector<WorkerStats> worker_stats;       // one slot per worker
  std::vector<WorkerOutcome> outcomes;         // one slot per worker
};

/// Adds the elapsed seconds since `from` to `sink` and resets `from`.
class SegmentTimer {
 public:
  using Clock = std::chrono::steady_clock;
  void charge(double& sink) {
    const Clock::time_point now = Clock::now();
    sink += std::chrono::duration<double>(now - mark_).count();
    mark_ = now;
  }
  void reset() { mark_ = Clock::now(); }

 private:
  Clock::time_point mark_ = Clock::now();
};

void run_worker(WorkerShared& shared, int worker) {
  const DistTrainOptions& options = *shared.options;
  const int group_size = options.group_size;
  const int group_index = worker / group_size;
  const int local_rank = worker % group_size;
  const bool is_root = local_rank == 0;
  const bool is_async = group_size == 1;

  minimpi::Endpoint mpi = shared.mpi->endpoint(worker);
  coll::Communicator comm =
      (*shared.groups)[static_cast<std::size_t>(group_index)]->communicator(local_rank);

  dl::Net net = dl::make_model(options.model_family, options.input);
  const std::size_t param_count = net.param_count();

  // --- Fig. 2 initialisation: the master creates the global-weight segment
  // and the progress board, then broadcasts the SHM key over MPI.
  smb::ShmKey shm_key = 0;
  ShardedBuffer global;
  std::unique_ptr<ProgressBoard> board;
  smb::SmbServer& board_server = *shared.servers.front();
  if (worker == 0) {
    shm_key = shared.base_key;
    global = ShardedBuffer::create(shared.servers, shm_key, param_count);
    board = std::make_unique<ProgressBoard>(board_server, shm_key + kProgressKeyOffset,
                                            options.workers, /*create=*/true);
    common::Rng init_rng(options.seed);
    net.init_params(init_rng);
    std::vector<float> init(param_count);
    dl::copy_params_to(net, init);
    global.write(init);
  }
  mpi.broadcast_value(0, shm_key);
  if (worker != 0) {
    global = ShardedBuffer::attach(shared.servers, shm_key, param_count);
    board = std::make_unique<ProgressBoard>(board_server, shm_key + kProgressKeyOffset,
                                            options.workers, /*create=*/false);
  }
  board->heartbeat(worker);  // arm liveness before the first iteration
  // Every group root owns a private weight-increment buffer (Fig. 5: the
  // dW_x buffers are not shared among other workers).
  ShardedBuffer delta_buffer;
  if (is_root) {
    delta_buffer = ShardedBuffer::create(
        shared.servers, shm_key + 1 + static_cast<smb::ShmKey>(worker), param_count);
  }
  mpi.barrier();

  // Everyone adopts the initial global weights before training.
  std::vector<float> local(param_count);
  std::vector<float> global_copy(param_count);
  global.read(local);
  dl::copy_params_from(net, local);

  dl::SolverOptions solver_options = options.solver;
  solver_options.step_size = shared.lr_step_iterations;
  dl::SgdSolver solver(net, solver_options);

  data::Prefetcher prefetcher(
      data::ShardedLoader(*shared.train_set, worker, options.workers, options.batch_size,
                          options.seed ^ 0xda7aULL),
      options.prefetch_depth);

  // --- Fig. 6 update thread (group roots only).
  ExchangeState exchange;
  exchange.delta.resize(param_count);
  std::thread update_thread;
  if (is_root) {
    update_thread = std::thread([&exchange, &delta_buffer, &global] {
      std::unique_lock lock(exchange.mutex);
      for (;;) {
        exchange.cv.wait(lock, [&] { return exchange.pending || exchange.stopping; });
        if (!exchange.pending) return;  // stopping with nothing pending
        // T.A1: store the weight increment in this worker's RSM segments.
        delta_buffer.write(exchange.delta);
        // T.A2-T.A4: exclusive server-side global accumulate (eq. 7),
        // shard by shard across the SMB servers.
        delta_buffer.accumulate_into(global);
        exchange.pending = false;
        exchange.cv.notify_all();  // T.A5: wake a blocked main thread
      }
    });
  }

  WorkerStats& stats = shared.worker_stats[static_cast<std::size_t>(worker)];
  const float alpha = static_cast<float>(options.moving_rate);
  auto seasgd_exchange = [&] {
    ++stats.exchanges;
    // T1/T2 must be mutually exclusive with the update thread's T.A1-T.A4:
    // block here until the previous increment has been flushed.
    std::unique_lock lock(exchange.mutex);
    exchange.cv.wait(lock, [&] { return !exchange.pending; });
    global.read(global_copy);                                     // T1
    dl::copy_params_to(net, local);
    elastic_exchange(local, global_copy, alpha, exchange.delta);  // T2: eqs. (5)+(6)
    dl::copy_params_from(net, local);
    exchange.pending = true;  // T3: hand the increment to the update thread
    lock.unlock();
    exchange.cv.notify_all();
  };

  // Fault injection: crashes fell whole groups (a dead node takes all its
  // GPUs), keyed on the group root's worker index so every member of a
  // hybrid group breaks at the same iteration, before any collective could
  // deadlock on a missing peer.  Stalls are per individual worker.
  const fault::FaultInjector* faults = options.faults;
  const int group_root_worker = worker - local_rank;

  std::vector<float> grads(group_size > 1 ? param_count : 0);
  std::vector<float> vote(1);
  std::int64_t iteration = 0;
  bool stop = false;
  bool crashed = false;
  while (!stop) {
    if (faults != nullptr) {
      if (faults->crashes_at(group_root_worker, iteration)) {
        // Fail-stop: exit without reporting, marking, or releasing —
        // survivors must detect the death from the missed heartbeats.
        crashed = true;
        break;
      }
      const double stall = faults->stall_seconds(worker, iteration);
      if (stall > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(stall));
      }
    }
    // Fenced while stalled: dead is final, so exit instead of re-joining.
    // Async only — a hybrid member must keep lockstep with its group (whose
    // peers may already be blocked in a collective) and exits through the
    // root's stop vote instead.
    if (is_async && board->is_dead(worker)) break;

    // Homogeneous-GPU pacing: do not run further ahead of the slowest
    // *live* worker than the configured skew (see DistTrainOptions).
    if (options.max_iteration_skew > 0) {
      while (!board->stop_raised() && !board->is_dead(worker) &&
             iteration - board->min_iterations() >
                 static_cast<std::int64_t>(options.max_iteration_skew)) {
        board->heartbeat(worker);
        if (options.heartbeat_timeout_seconds > 0.0) {
          board->sweep_dead(options.heartbeat_timeout_seconds);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }

    const bool sharing = iteration % options.update_interval == 0;
    SegmentTimer timer;

    // ShmCaffe-A reads the global weight at the start of every iteration;
    // the paper deliberately does not hide T_rgw behind computation, to
    // avoid training on stale parameters.
    if (is_async && sharing) {
      seasgd_exchange();
      timer.charge(stats.exchange_seconds);
    }

    data::Batch batch = prefetcher.next();
    timer.charge(stats.data_wait_seconds);
    net.input("data") = std::move(batch.data);
    net.input("label") = std::move(batch.labels);
    (void)net.forward(/*train=*/true);
    net.backward();
    timer.charge(stats.train_seconds);

    if (group_size > 1) {
      // Hybrid: intra-group synchronous SGD (ncclAllReduce of gradients).
      dl::copy_grads_to(net, grads);
      comm.all_reduce_mean(grads);
      dl::copy_grads_from(net, grads);
      timer.charge(stats.collective_seconds);
    }
    solver.step();  // eq. (2)
    timer.charge(stats.train_seconds);

    if (!is_async && sharing) {
      // Hybrid §III-D: the root exchanges with the SMB server, then
      // broadcasts the refreshed weights to its group.
      if (is_root) {
        seasgd_exchange();
        dl::copy_params_to(net, local);
        timer.charge(stats.exchange_seconds);
      }
      comm.broadcast(0, local);
      if (!is_root) dl::copy_params_from(net, local);
      timer.charge(stats.collective_seconds);
    }

    ++iteration;
    shared.total_iterations.fetch_add(1, std::memory_order_relaxed);

    // §III-E: aligned termination via the shared progress board.  The group
    // root takes the decision; synchronous members follow it so the group
    // never diverges.
    if (is_root) {
      vote[0] = board->should_stop(options.termination, worker, iteration,
                                   shared.target_iterations,
                                   options.heartbeat_timeout_seconds)
                    ? 1.0F
                    : 0.0F;
    } else {
      board->report(worker, iteration);
    }
    if (group_size > 1) comm.broadcast(0, vote);
    stop = vote[0] != 0.0F;
  }

  shared.final_iterations[static_cast<std::size_t>(worker)] = iteration;
  stats.iterations = iteration;
  const WorkerOutcome outcome = crashed             ? WorkerOutcome::kCrashed
                                : board->is_dead(worker) ? WorkerOutcome::kFenced
                                                         : WorkerOutcome::kFinished;
  shared.outcomes[static_cast<std::size_t>(worker)] = outcome;

  if (is_root) {
    {
      std::scoped_lock lock(exchange.mutex);
      exchange.stopping = true;
    }
    exchange.cv.notify_all();
    update_thread.join();  // thread hygiene even on the crash path
  }
  if (crashed) return;  // fail-stop: remote attachments are never released
  if (outcome == WorkerOutcome::kFinished) board->mark_finished(worker);
  if (is_root) delta_buffer.release();
  board->release();
  global.release();
}

}  // namespace

TrainResult train_shmcaffe(const DistTrainOptions& options) {
  if (options.workers < 1) throw std::invalid_argument("workers must be >= 1");
  if (options.group_size < 1 || options.workers % options.group_size != 0) {
    throw std::invalid_argument("group_size must divide workers");
  }
  if (options.update_interval < 1) {
    throw std::invalid_argument("update_interval must be >= 1");
  }

  if (options.smb_servers < 1) throw std::invalid_argument("smb_servers must be >= 1");
  const data::SynthImageDataset train_set(options.train_data);
  const data::SynthImageDataset test_set(options.test_data);

  std::vector<std::unique_ptr<smb::SmbServer>> servers;
  for (int n = 0; n < options.smb_servers; ++n) {
    servers.push_back(std::make_unique<smb::SmbServer>());
  }
  minimpi::Context mpi(options.workers);
  std::vector<std::unique_ptr<coll::DeviceGroup>> groups;
  for (int g = 0; g < options.workers / options.group_size; ++g) {
    groups.push_back(std::make_unique<coll::DeviceGroup>(options.group_size));
  }

  WorkerShared shared;
  shared.options = &options;
  shared.train_set = &train_set;
  for (const auto& server : servers) shared.servers.push_back(server.get());
  shared.mpi = &mpi;
  shared.groups = &groups;
  shared.base_key = (options.seed | 1) & 0x7fffffff;
  shared.final_iterations.assign(static_cast<std::size_t>(options.workers), 0);
  shared.worker_stats.assign(static_cast<std::size_t>(options.workers), WorkerStats{});
  shared.outcomes.assign(static_cast<std::size_t>(options.workers),
                         WorkerOutcome::kFinished);

  const std::int64_t iters_per_epoch_total =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(train_set.size()) /
                                    options.batch_size);
  const std::int64_t per_worker_per_epoch =
      std::max<std::int64_t>(1, iters_per_epoch_total / options.workers);
  shared.target_iterations = per_worker_per_epoch * options.epochs;
  shared.lr_step_iterations =
      std::max<int>(1, static_cast<int>(per_worker_per_epoch) * 4);  // 4-epoch LR steps

  const auto wall_start = std::chrono::steady_clock::now();

  // Fault scheduler: fires SMB-server freeze windows at their wall-clock
  // offsets from the training start.  Interruptible so a short run does not
  // wait out a plan scheduled past its end.
  std::mutex freeze_mutex;
  std::condition_variable freeze_cv;
  bool freeze_stop = false;
  std::thread freeze_thread;
  if (options.faults != nullptr) {
    std::vector<fault::FaultEvent> freezes;
    for (int n = 0; n < options.smb_servers; ++n) {
      for (const fault::FaultEvent& event : options.faults->server_freezes(n)) {
        freezes.push_back(event);
      }
    }
    std::sort(freezes.begin(), freezes.end(),
              [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                return a.start_seconds < b.start_seconds;
              });
    if (!freezes.empty()) {
      freeze_thread = std::thread([&shared, &freeze_mutex, &freeze_cv, &freeze_stop,
                                   wall_start, freezes = std::move(freezes)] {
        std::unique_lock lock(freeze_mutex);
        for (const fault::FaultEvent& event : freezes) {
          const auto at = wall_start + std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::duration<double>(event.start_seconds));
          if (freeze_cv.wait_until(lock, at, [&] { return freeze_stop; })) return;
          shared.servers[static_cast<std::size_t>(event.target)]->freeze_for(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::duration<double>(event.duration_seconds)));
        }
      });
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    threads.emplace_back([&shared, w] { run_worker(shared, w); });
  }
  std::atomic<bool> joined{false};
  std::thread joiner([&threads, &joined] {
    for (auto& t : threads) t.join();
    joined = true;
  });

  // Orchestrator: snapshot and evaluate the global weights at
  // epoch-equivalent boundaries (total iterations across all workers).
  // The attach races worker 0's segment creation, so it retries with
  // backoff; it gives up once the workers are gone (a fault plan may have
  // crashed every worker before the segments appeared).
  TrainResult result;
  dl::Net eval_net = dl::make_model(options.model_family, options.input);
  ShardedBuffer global;
  {
    smb::RetryPolicy policy;
    common::Rng backoff_rng(options.seed ^ 0x0bcull);
    int attempt = 0;
    while (!joined.load(std::memory_order_acquire)) {
      try {
        global = ShardedBuffer::attach(shared.servers, shared.base_key,
                                       eval_net.param_count());
        break;
      } catch (const smb::SmbNotFound&) {
        std::this_thread::sleep_for(smb::backoff_delay(policy, ++attempt, backoff_rng));
      }
    }
    if (!global.valid()) {
      try {
        global = ShardedBuffer::attach(shared.servers, shared.base_key,
                                       eval_net.param_count());
      } catch (const smb::SmbNotFound&) {
        // every worker crashed before creating the segments; no curve
      }
    }
  }
  std::vector<float> snapshot(global.valid() ? global.size() : 0);

  const std::int64_t total_target =
      shared.target_iterations * static_cast<std::int64_t>(options.workers);
  const std::int64_t per_epoch_total =
      std::max<std::int64_t>(1, total_target / options.epochs);
  int next_epoch = 1;
  auto catch_up_evals = [&] {
    if (!global.valid()) return;
    const std::int64_t done = shared.total_iterations.load(std::memory_order_relaxed);
    while (next_epoch < options.epochs &&
           done >= static_cast<std::int64_t>(next_epoch) * per_epoch_total) {
      global.read(snapshot);
      dl::copy_params_from(eval_net, snapshot);
      const EvalResult eval = evaluate(eval_net, test_set);
      result.curve.push_back(EpochMetrics{next_epoch, eval.loss, eval.accuracy});
      ++next_epoch;
    }
  };
  while (!joined.load(std::memory_order_acquire)) {
    catch_up_evals();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  joiner.join();
  catch_up_evals();

  if (global.valid()) {
    global.read(snapshot);
    dl::copy_params_from(eval_net, snapshot);
    const EvalResult final_eval = evaluate(eval_net, test_set);
    result.final_accuracy = final_eval.accuracy;
    result.final_loss = final_eval.loss;
    if (result.curve.empty() || result.curve.back().epoch < options.epochs) {
      result.curve.push_back(
          EpochMetrics{options.epochs, final_eval.loss, final_eval.accuracy});
    }
    global.release();
  }

  if (freeze_thread.joinable()) {
    {
      std::scoped_lock lock(freeze_mutex);
      freeze_stop = true;
    }
    freeze_cv.notify_all();
    freeze_thread.join();
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.iterations_per_worker = shared.final_iterations;
  result.worker_stats = std::move(shared.worker_stats);
  result.worker_outcomes = shared.outcomes;
  for (int w = 0; w < options.workers; ++w) {
    if (shared.outcomes[static_cast<std::size_t>(w)] != WorkerOutcome::kFinished) {
      result.dead_workers.push_back(w);
    }
  }
  return result;
}

}  // namespace shmcaffe::core
