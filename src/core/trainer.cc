#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "coll/nccl.h"
#include "common/arena.h"
#include "core/evaluate.h"
#include "core/progress_board.h"
#include "elastic/membership.h"
#include "core/seasgd_math.h"
#include "core/sharded_buffer.h"
#include "data/loader.h"
#include "dl/param_vector.h"
#include "fault/injector.h"
#include "minimpi/minimpi.h"
#include "recovery/checkpoint.h"
#include "recovery/integrity.h"
#include "recovery/replicated_smb.h"
#include "recovery/schedule.h"
#include "smb/client.h"
#include "smb/server.h"

namespace shmcaffe::core {
namespace {

constexpr smb::ShmKey kProgressKeyOffset = 1'000'000;

/// The Fig. 6 update-thread state: one per group root.
struct ExchangeState {
  std::mutex mutex;
  std::condition_variable cv;
  bool pending = false;  // a weight increment awaits flushing to the SMB
  bool stopping = false;
  /// Weight-increment staging (eq. 5 output), arena-backed: sized once per
  /// worker life and recycled across lives through the registry.  The buffer
  /// is an owning arena allocation (not a view of SMB storage), shared
  /// between the main and update threads under `mutex` for the worker's
  /// whole life — a deliberate escape.
  common::arena::Buffer delta SHMCAFFE_PIN_ESCAPE{"trainer.exchange.delta"};
};

struct WorkerShared {
  const DistTrainOptions* options = nullptr;
  const data::SynthImageDataset* train_set = nullptr;
  /// One service per shard: the raw SmbServer (smb_replicas == 1) or the
  /// shard's ReplicatedSmb ensemble — workers are oblivious to which.
  std::vector<smb::SmbService*> services;
  minimpi::Context* mpi = nullptr;
  std::vector<std::unique_ptr<coll::DeviceGroup>>* groups = nullptr;
  std::int64_t target_iterations = 0;
  int lr_step_iterations = 0;
  smb::ShmKey base_key = 0;
  /// Worker slots including reserved join capacity (== workers when the run
  /// is not elastic); final_iterations/worker_stats/outcomes are this long.
  int capacity = 0;
  std::atomic<std::int64_t> total_iterations{0};
  std::vector<std::int64_t> final_iterations;  // one slot per worker
  std::vector<WorkerStats> worker_stats;       // one slot per worker
  std::vector<WorkerOutcome> outcomes;         // one slot per worker
  // --- elastic membership -------------------------------------------------
  /// The run's membership registry, or nullptr for a fixed-membership run.
  elastic::MembershipService* membership = nullptr;
  // --- recovery ----------------------------------------------------------
  const recovery::TrainCheckpoint* resume = nullptr;  // validated, or null
  const recovery::CheckpointStore* checkpoint_store = nullptr;
  std::atomic<std::int64_t> checkpoints_taken{0};
  std::atomic<std::uint64_t> checkpoint_sequence{0};
  // --- data integrity ----------------------------------------------------
  /// Per-shard replica ensembles, for checkpoint-window scrubbing (empty
  /// when smb_replicas == 1 — scrubbing needs a peer to vote against).
  std::vector<recovery::ReplicatedSmb*> ensembles;
  std::atomic<std::int64_t> integrity_rollbacks{0};
};

/// Adds the elapsed seconds since `from` to `sink` and resets `from`.
class SegmentTimer {
 public:
  using Clock = std::chrono::steady_clock;
  void charge(double& sink) {
    const Clock::time_point now = Clock::now();
    sink += std::chrono::duration<double>(now - mark_).count();
    mark_ = now;
  }
  void reset() { mark_ = Clock::now(); }

 private:
  Clock::time_point mark_ = Clock::now();
};

/// Which life of a worker slot this call runs.
enum class WorkerLife {
  kInitial,   ///< an original rank, from the start of the run
  kRejoin,    ///< a replacement life for a crashed/fenced rank (recovery)
  kColdJoin,  ///< an elastic cold join into a reserved capacity slot
};

/// kRejoin runs a replacement life for a crashed worker slot: it attaches
/// to the existing segments by SHM key (the Fig. 2 slave path), adopts the
/// current W_g, and re-registers on the progress board under a fresh
/// incarnation number so anything the previous life left behind is fenced.
/// kColdJoin is the elastic variant: the slot never lived before, so it is
/// admitted onto the board (fresh incarnation, never a dead rank's slot)
/// and the membership service has already rebalanced the shard map for it.
/// Both late lives skip the MPI collectives — their peers ran them long ago.
void run_worker(WorkerShared& shared, int worker, WorkerLife life = WorkerLife::kInitial) {
  const DistTrainOptions& options = *shared.options;
  const bool rejoin = life == WorkerLife::kRejoin;
  const bool cold_join = life == WorkerLife::kColdJoin;
  const int group_size = options.group_size;
  const int group_index = worker / group_size;
  const int local_rank = worker % group_size;
  const bool is_root = local_rank == 0;
  const bool is_async = group_size == 1;

  // Cold-join slots sit beyond the MPI world and the device groups (both
  // are sized for the initial ranks); elastic runs are pure SEASGD
  // (group_size == 1, validated by train_shmcaffe), so a joiner never
  // touches either handle.
  minimpi::Endpoint mpi;
  coll::Communicator comm;
  if (!cold_join) {
    mpi = shared.mpi->endpoint(worker);
    comm = (*shared.groups)[static_cast<std::size_t>(group_index)]->communicator(local_rank);
  }

  dl::Net net = dl::make_model(options.model_family, options.input);
  const std::size_t param_count = net.param_count();

  // A resumed run restores worker cursors from the checkpoint; replacement
  // and cold-join lives start their own count from zero (their board slot
  // was reset or freshly admitted).
  const recovery::TrainCheckpoint* resume =
      (rejoin || cold_join) ? nullptr : shared.resume;
  const std::int64_t start_iteration =
      resume != nullptr ? resume->worker_iterations[static_cast<std::size_t>(worker)] : 0;

  // --- Fig. 2 initialisation: the master creates the global-weight segment
  // and the progress board, then broadcasts the SHM key over MPI.  A
  // replacement life skips the collectives (its peers ran them long ago)
  // and goes straight to the slave attach path.
  smb::ShmKey shm_key = 0;
  ShardedBuffer global;
  std::unique_ptr<ProgressBoard> board;
  std::int64_t incarnation = ProgressBoard::kFirstIncarnation;
  smb::SmbService& board_server = *shared.services.front();
  if (rejoin || cold_join) {
    shm_key = shared.base_key;
    global = ShardedBuffer::attach(shared.services, shm_key, param_count);
    board = std::make_unique<ProgressBoard>(board_server, shm_key + kProgressKeyOffset,
                                            options.workers, /*create=*/false);
    incarnation = cold_join ? board->admit(worker) : board->readmit(worker);
  } else if (worker == 0) {
    shm_key = shared.base_key;
    global = ShardedBuffer::create(shared.services, shm_key, param_count);
    board = std::make_unique<ProgressBoard>(board_server, shm_key + kProgressKeyOffset,
                                            options.workers, /*create=*/true,
                                            shared.capacity);
    common::arena::Buffer init{"trainer.init"};
    init.assign(param_count, 0.0F);
    if (resume != nullptr) {
      // W_g exactly as checkpointed
      std::copy(resume->global_weights.begin(), resume->global_weights.end(), init.data());
    } else {
      common::Rng init_rng(options.seed);
      net.init_params(init_rng);
      dl::copy_params_to(net, init.span());
    }
    global.write(init.span());
  }
  if (!rejoin && !cold_join) {
    mpi.broadcast_value(0, shm_key);
    if (worker != 0) {
      global = ShardedBuffer::attach(shared.services, shm_key, param_count);
      board = std::make_unique<ProgressBoard>(board_server, shm_key + kProgressKeyOffset,
                                              options.workers, /*create=*/false);
    }
  }
  board->heartbeat(worker, incarnation);  // arm liveness before the first iteration
  // Restore this worker's public iteration count so kAverageIterations
  // accounting continues where the interrupted run left off.
  if (start_iteration > 0) board->report(worker, start_iteration, incarnation);
  // Every group root owns a private weight-increment buffer (Fig. 5: the
  // dW_x buffers are not shared among other workers).  A replacement life
  // re-attaches its crashed predecessor's orphaned buffer.
  ShardedBuffer delta_buffer;
  if (is_root) {
    const smb::ShmKey delta_key = shm_key + 1 + static_cast<smb::ShmKey>(worker);
    if (rejoin) {
      try {
        delta_buffer = ShardedBuffer::attach(shared.services, delta_key, param_count);
      } catch (const smb::SmbNotFound&) {
        delta_buffer = ShardedBuffer::create(shared.services, delta_key, param_count);
      }
    } else {
      delta_buffer = ShardedBuffer::create(shared.services, delta_key, param_count);
    }
  }
  if (!rejoin && !cold_join) mpi.barrier();

  // Elastic fan-out rotation: start every multi-shard SMB access at this
  // worker's home shard (rebalanced by the membership service on every
  // join/drain/evict) so concurrent exchanges spread across the shard
  // ensembles instead of all serialising on shard 0.
  elastic::MembershipService* const membership = shared.membership;
  auto home_shard = [membership, worker]() -> std::size_t {
    return membership != nullptr ? static_cast<std::size_t>(membership->home_shard(worker))
                                 : 0;
  };

  // Everyone adopts the initial global weights before training; the resumed
  // owner restores its exact checkpointed parameters instead (they lag W_g
  // by the elastic difference).
  common::arena::Buffer local{"trainer.local"};
  local.assign(param_count, 0.0F);
  common::arena::Buffer global_copy{"trainer.global_copy"};
  global_copy.assign(param_count, 0.0F);
  try {
    global.read(local.span(), home_shard());
  } catch (const smb::SmbCorruption&) {
    // W_g is corrupt before this life's first read and nothing below us
    // could repair it.  Adopt freshly initialised parameters instead; the
    // first exchange surfaces the corruption again and rolls back properly.
    common::Rng init_rng(options.seed);
    net.init_params(init_rng);
    dl::copy_params_to(net, local.span());
  }
  dl::copy_params_from(net, local.span());
  if (resume != nullptr && worker == 0) {
    dl::copy_params_from(net, resume->owner_params);
  }

  dl::SolverOptions solver_options = options.solver;
  solver_options.step_size = shared.lr_step_iterations;
  dl::SgdSolver solver(net, solver_options);
  if (resume != nullptr) {
    solver.set_iteration(static_cast<int>(
        worker == 0 ? resume->owner_solver_iteration : start_iteration));
    if (worker == 0) solver.set_momentum_state(resume->owner_momentum);
  }

  // Data shards are cut over the full slot capacity so a cold joiner gets a
  // shard of its own (capacity == workers in a fixed-membership run, so the
  // classic sharding is unchanged).
  data::ShardedLoader loader(*shared.train_set, worker, shared.capacity, options.batch_size,
                             options.seed ^ 0xda7aULL);
  if (start_iteration > 0) loader.skip_batches(start_iteration);
  data::Prefetcher prefetcher(std::move(loader), options.prefetch_depth);

  // --- Fig. 6 update thread (group roots only).
  ExchangeState exchange;
  exchange.delta.assign(param_count, 0.0F);
  std::thread update_thread;
  if (is_root) {
    // The update thread flushes T.A1-T.A4 while *holding* exchange.mutex:
    // that mutex IS the Fig. 6 mutual exclusion between the main thread's
    // T1/T2 window and the flush, and the only other party is the main
    // thread, which is parked on exchange.cv (mutex released) whenever the
    // flush runs.  lint:allow-next-line(no-blocking-under-lock)
    update_thread = std::thread([&exchange, &delta_buffer, &global, home_shard] {
      std::unique_lock lock(exchange.mutex);
      for (;;) {
        exchange.cv.wait(lock, [&] { return exchange.pending || exchange.stopping; });
        if (!exchange.pending) return;  // stopping with nothing pending
        try {
          // T.A1: store the weight increment in this worker's RSM segments.
          delta_buffer.write(exchange.delta.span(), home_shard());
          // T.A2-T.A4: exclusive server-side global accumulate (eq. 7),
          // shard by shard across the SMB servers starting at the home shard.
          delta_buffer.accumulate_into(global, home_shard());
        } catch (const smb::SmbUnavailable&) {
          // Every replica of some shard is gone.  Unblock the main thread
          // and bow out; its own SMB access surfaces the failure.
          exchange.pending = false;
          exchange.stopping = true;
          exchange.cv.notify_all();
          return;
        } catch (const smb::SmbCorruption&) {
          // Unrepairable corruption on the delta/global path: this increment
          // cannot land safely, so drop it.  The main thread's next exchange
          // read surfaces the corruption and rolls W_g back.
          exchange.pending = false;
          exchange.cv.notify_all();
          continue;
        }
        exchange.pending = false;
        exchange.cv.notify_all();  // T.A5: wake a blocked main thread
      }
    });
  }

  WorkerStats& stats = shared.worker_stats[static_cast<std::size_t>(worker)];
  const float alpha = static_cast<float>(options.moving_rate);
  auto seasgd_exchange = [&] {
    ++stats.exchanges;
    // T1/T2 must be mutually exclusive with the update thread's T.A1-T.A4:
    // block here until the previous increment has been flushed.
    std::unique_lock lock(exchange.mutex);
    exchange.cv.wait(lock, [&] { return !exchange.pending || exchange.stopping; });
    if (exchange.stopping) throw smb::SmbUnavailable("SMB lost during exchange");
    dl::copy_params_to(net, local.span());
    if (options.zero_copy_reads) {
      // T1 zero-copy: pin per-shard views of W_g (checksums verified once
      // at pin time) and run T2 directly against SMB storage — no staging
      // copy of the global weights at all.  Per-shard chunking changes
      // nothing numerically: eqs. (5)+(6) are elementwise, so the floats
      // match the staged path bitwise for any shard split or pool width.
      // T1/T2 run under exchange.mutex by design (mutual exclusion with the
      // update thread, which is parked on the cv here), and the pins are
      // dropped before the lock: frame-local, never pinned-across-unlock.
      // lint:allow-next-line(no-blocking-under-lock,pin-lifetime)
      for (ShardedBuffer::PinnedShard& shard : global.read_pinned(home_shard())) {
        // lint:allow-next-line(no-blocking-under-lock) pool fan-out inside
        elastic_exchange_parallel(                      // the T1/T2 window
            std::span<float>(local.data() + shard.offset, shard.view.size()),
            shard.view.span(), alpha,
            std::span<float>(exchange.delta.data() + shard.offset, shard.view.size()));
      }
    } else {
      // Same mutual-exclusion argument as the zero-copy branch above.
      // lint:allow-next-line(no-blocking-under-lock)
      global.read(global_copy.span(), home_shard());  // T1
      // T2: eqs. (5)+(6), chunked on the work pool (bitwise equal to the
      // scalar elastic_exchange for any SHMCAFFE_THREADS).
      // lint:allow-next-line(no-blocking-under-lock)
      elastic_exchange_parallel(local.span(), global_copy.span(), alpha,
                                exchange.delta.span());
    }
    dl::copy_params_from(net, local.span());
    exchange.pending = true;  // T3: hand the increment to the update thread
    lock.unlock();
    exchange.cv.notify_all();
  };

  // Unrepairable corruption surfaced on the global-weight path: degrade to
  // a rollback instead of aborting.  Restore W_g from the newest valid
  // checkpoint — or, without one, from this worker's own parameters
  // (consistent, if older) — and continue; the full rewrite refreshes the
  // segment checksums, healing every replica.
  auto integrity_rollback = [&] {
    shared.integrity_rollbacks.fetch_add(1, std::memory_order_relaxed);
    std::vector<float> restore;
    if (shared.checkpoint_store != nullptr) {
      std::optional<recovery::TrainCheckpoint> rollback;
      try {
        rollback = shared.checkpoint_store->load_latest();
      } catch (const std::exception&) {
        // unreadable store: fall through to the local-parameter restore
      }
      if (rollback.has_value() && rollback->global_weights.size() == param_count) {
        restore = std::move(rollback->global_weights);
      }
    }
    if (restore.empty()) {
      dl::copy_params_to(net, local.span());
      restore.assign(local.data(), local.data() + local.size());
    }
    global.write(restore, home_shard());
  };

  // Periodic crash-consistent checkpoint (owner worker only): quiesce the
  // update thread, snapshot W_g + the board counters + the owner solver
  // state, and hand it to the double-buffered store.
  const bool checkpointing = shared.checkpoint_store != nullptr && worker == 0 &&
                             options.checkpoint.interval_iterations > 0;
  auto save_checkpoint = [&](std::int64_t iteration) {
    recovery::TrainCheckpoint checkpoint;
    checkpoint.sequence =
        shared.checkpoint_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
    checkpoint.seed = options.seed;
    checkpoint.owner_solver_iteration = solver.iteration();
    checkpoint.worker_iterations.resize(static_cast<std::size_t>(options.workers));
    for (int w = 0; w < options.workers; ++w) {
      checkpoint.worker_iterations[static_cast<std::size_t>(w)] =
          w == worker ? iteration : board->iterations_of(w);
    }
    {
      std::unique_lock lock(exchange.mutex);
      exchange.cv.wait(lock, [&] { return !exchange.pending || exchange.stopping; });
      if (exchange.stopping) throw smb::SmbUnavailable("SMB lost during checkpoint");
      // Checkpoint consistency REQUIRES reading W_g inside the exchange
      // window: no accumulate can be in flight while the mutex is held.
      // lint:allow-next-line(no-blocking-under-lock)
      global.read(global_copy.span());  // consistent: no in-flight accumulate
    }
    checkpoint.global_weights.assign(global_copy.data(), global_copy.data() + global_copy.size());
    dl::copy_params_to(net, local.span());
    checkpoint.owner_params.assign(local.data(), local.data() + local.size());
    checkpoint.owner_momentum = solver.momentum_state();
    shared.checkpoint_store->save(checkpoint);
    shared.checkpoints_taken.fetch_add(1, std::memory_order_relaxed);
    // Checkpoint windows double as scrub windows: walk the replica
    // ensembles while the update thread is quiesced, repairing any silent
    // corruption before it is ever read.
    if (options.integrity.enabled() && options.integrity.scrub_on_checkpoint) {
      for (recovery::ReplicatedSmb* ensemble : shared.ensembles) ensemble->scrub();
    }
  };

  // Fault injection: crashes fell whole groups (a dead node takes all its
  // GPUs), keyed on the group root's worker index so every member of a
  // hybrid group breaks at the same iteration, before any collective could
  // deadlock on a missing peer.  Stalls are per individual worker.  A
  // replacement life does not replay its predecessor's faults.
  const fault::FaultInjector* faults = rejoin ? nullptr : options.faults;
  const int group_root_worker = worker - local_rank;

  // Straggler detection: route the transitions the shared-board sweep
  // applied into the membership registry so the executed-change counts (and
  // the fingerprint) see them.  Any worker may run the sweep; the board
  // serialises concurrent sweepers.
  std::vector<float> grads(group_size > 1 ? param_count : 0);
  std::vector<float> vote(1);
  std::int64_t iteration = start_iteration;
  bool stop = false;
  bool crashed = false;
  bool drained = false;
  bool evicted = false;
  auto elastic_sweep = [&] {
    if (membership == nullptr || !options.membership_policy.straggler_detection) return;
    for (const elastic::StragglerTransition& transition :
         board->sweep_stragglers(options.membership_policy)) {
      switch (transition.verdict) {
        case elastic::StragglerVerdict::kQuarantine:
          membership->quarantine(transition.worker, iteration);
          break;
        case elastic::StragglerVerdict::kReadmit:
          membership->readmit_contributor(transition.worker, iteration);
          break;
        case elastic::StragglerVerdict::kEvict:
          membership->evict(transition.worker, iteration);
          break;
        case elastic::StragglerVerdict::kNone:
          break;
      }
    }
  };
  // The planned iteration at which this worker leaves voluntarily (-1:
  // never).  A drain applies to the slot's current life; a replacement life
  // honours it too.
  const std::int64_t drain_at =
      options.membership != nullptr ? options.membership->drain_iteration(worker) : -1;
  try {
    while (!stop) {
      if (faults != nullptr) {
        if (faults->crashes_at(group_root_worker, iteration)) {
          // Fail-stop: exit without reporting, marking, or releasing —
          // survivors must detect the death from the missed heartbeats.
          crashed = true;
          break;
        }
        const double stall = faults->stall_seconds(worker, iteration);
        if (stall > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(stall));
        }
      }
      // Voluntary drain: flush the pending increment so the last
      // contribution lands, register the departure (epoch bump + shard
      // rebalance), and leave cleanly.
      if (drain_at >= 0 && iteration >= drain_at && !board->stop_raised()) {
        if (is_root) {
          std::unique_lock lock(exchange.mutex);
          exchange.cv.wait(lock, [&] { return !exchange.pending || exchange.stopping; });
        }
        board->mark_drained(worker);
        if (membership != nullptr) membership->drain(worker, drain_at);
        drained = true;
        break;
      }
      // Fenced while stalled: dead is final for this life, so exit instead
      // of re-joining; an eviction by the straggler detector ends the same
      // way.  Async only — a hybrid member must keep lockstep with its
      // group (whose peers may already be blocked in a collective) and
      // exits through the root's stop vote instead.
      ProgressBoard::WorkerState my_state = ProgressBoard::WorkerState::kAlive;
      if (is_async) {
        my_state = board->state_of(worker);
        if (my_state == ProgressBoard::WorkerState::kDead) break;
        if (my_state == ProgressBoard::WorkerState::kEvicted) {
          evicted = true;
          break;
        }
      }
      // Quarantined: keep training toward readmission, but contribute
      // nothing — no SEASGD exchange until the sweep readmits this worker.
      const bool quarantined = my_state == ProgressBoard::WorkerState::kQuarantined;

      // Homogeneous-GPU pacing: do not run further ahead of the slowest
      // *live* worker than the configured skew (see DistTrainOptions).
      if (options.max_iteration_skew > 0) {
        while (!board->stop_raised() && !board->is_dead(worker) &&
               iteration - board->min_iterations() >
                   static_cast<std::int64_t>(options.max_iteration_skew)) {
          board->heartbeat(worker, incarnation);
          if (options.heartbeat_timeout_seconds > 0.0) {
            board->sweep_dead(options.heartbeat_timeout_seconds);
          }
          elastic_sweep();
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }

      const bool sharing = iteration % options.update_interval == 0;
      SegmentTimer timer;

      // ShmCaffe-A reads the global weight at the start of every iteration;
      // the paper deliberately does not hide T_rgw behind computation, to
      // avoid training on stale parameters.
      if (is_async && sharing && !quarantined) {
        try {
          seasgd_exchange();
        } catch (const smb::SmbCorruption&) {
          integrity_rollback();
        }
        timer.charge(stats.exchange_seconds);
      }

      data::Batch batch = prefetcher.next();
      timer.charge(stats.data_wait_seconds);
      net.input("data") = std::move(batch.data);
      net.input("label") = std::move(batch.labels);
      (void)net.forward(/*train=*/true);
      net.backward();
      timer.charge(stats.train_seconds);

      if (group_size > 1) {
        // Hybrid: intra-group synchronous SGD (ncclAllReduce of gradients).
        dl::copy_grads_to(net, grads);
        comm.all_reduce_mean(grads);
        dl::copy_grads_from(net, grads);
        timer.charge(stats.collective_seconds);
      }
      solver.step();  // eq. (2)
      timer.charge(stats.train_seconds);

      if (!is_async && sharing) {
        // Hybrid §III-D: the root exchanges with the SMB server, then
        // broadcasts the refreshed weights to its group.
        if (is_root) {
          try {
            seasgd_exchange();
          } catch (const smb::SmbCorruption&) {
            integrity_rollback();
          }
          dl::copy_params_to(net, local.span());
          timer.charge(stats.exchange_seconds);
        }
        comm.broadcast(0, local.span());
        if (!is_root) dl::copy_params_from(net, local.span());
        timer.charge(stats.collective_seconds);
      }

      ++iteration;
      shared.total_iterations.fetch_add(1, std::memory_order_relaxed);

      if (checkpointing && iteration % options.checkpoint.interval_iterations == 0) {
        try {
          save_checkpoint(iteration);
        } catch (const smb::SmbCorruption&) {
          integrity_rollback();
        }
      }

      // §III-E: aligned termination via the shared progress board.  The group
      // root takes the decision; synchronous members follow it so the group
      // never diverges.
      elastic_sweep();
      if (is_root) {
        vote[0] = board->should_stop(options.termination, worker, iteration,
                                     shared.target_iterations,
                                     options.heartbeat_timeout_seconds, incarnation)
                      ? 1.0F
                      : 0.0F;
      } else {
        board->report(worker, iteration, incarnation);
      }
      if (group_size > 1) comm.broadcast(0, vote);
      stop = vote[0] != 0.0F;
      // A quarantined worker does not evaluate the cohort criterion
      // (should_stop always says "continue" for it); once it reaches its
      // own target it leaves quietly so an all-quarantined cohort cannot
      // spin forever.
      if (!stop && quarantined && iteration >= shared.target_iterations) stop = true;
    }
  } catch (const smb::SmbUnavailable&) {
    // The SMB backing this worker is permanently gone (no replica left to
    // fail over to): an infrastructure-induced fail-stop.
    crashed = true;
  } catch (const smb::SmbCorruption&) {
    // Corruption surfaced outside a rollback-capable site (no checkpoint,
    // no clean replica): data loss, treated like a fail-stop.
    crashed = true;
  }

  shared.final_iterations[static_cast<std::size_t>(worker)] = iteration;
  stats.iterations = iteration;
  WorkerOutcome outcome = WorkerOutcome::kFinished;
  if (crashed) {
    outcome = WorkerOutcome::kCrashed;
  } else if (drained) {
    outcome = WorkerOutcome::kDrained;
  } else if (evicted) {
    outcome = WorkerOutcome::kEvicted;
  } else {
    try {
      switch (board->state_of(worker)) {
        case ProgressBoard::WorkerState::kDead:
          outcome = WorkerOutcome::kFenced;
          break;
        case ProgressBoard::WorkerState::kEvicted:
          outcome = WorkerOutcome::kEvicted;
          break;
        default:
          outcome = WorkerOutcome::kFinished;
          break;
      }
    } catch (const smb::SmbUnavailable&) {
      outcome = WorkerOutcome::kCrashed;
    }
  }
  shared.outcomes[static_cast<std::size_t>(worker)] = outcome;

  if (is_root) {
    {
      std::scoped_lock lock(exchange.mutex);
      exchange.stopping = true;
    }
    exchange.cv.notify_all();
    update_thread.join();  // thread hygiene even on the crash path
  }
  if (outcome == WorkerOutcome::kCrashed) return;  // fail-stop: nothing is released
  try {
    if (outcome == WorkerOutcome::kFinished) board->mark_finished(worker);
    if (is_root) delta_buffer.release();
    board->release();
    global.release();
  } catch (const smb::SmbError&) {
    // Releasing against a fail-stopped service: nothing left to clean up.
  }
}

}  // namespace

TrainResult train_shmcaffe(const DistTrainOptions& options) {
  if (options.workers < 1) throw std::invalid_argument("workers must be >= 1");
  if (options.group_size < 1 || options.workers % options.group_size != 0) {
    throw std::invalid_argument("group_size must divide workers");
  }
  if (options.update_interval < 1) {
    throw std::invalid_argument("update_interval must be >= 1");
  }

  if (options.smb_servers < 1) throw std::invalid_argument("smb_servers must be >= 1");
  if (options.smb_replicas < 1) throw std::invalid_argument("smb_replicas must be >= 1");
  if (options.recovery.respawn_crashed && options.group_size != 1) {
    // A replacement cannot rejoin a hybrid group mid-collective.
    throw std::invalid_argument("respawn_crashed requires group_size == 1");
  }
  const bool elastic_run =
      options.membership != nullptr || options.membership_policy.straggler_detection;
  if (elastic_run && options.group_size != 1) {
    // Elastic workers run pure SEASGD: a hybrid group cannot shrink or grow
    // mid-collective.
    throw std::invalid_argument("elastic membership requires group_size == 1");
  }
  if (options.membership != nullptr) {
    for (const elastic::MembershipEvent& event : options.membership->events()) {
      if (event.kind == elastic::MembershipEventKind::kJoin &&
          event.worker < options.workers) {
        // A cold join never reuses an initial rank's slot — that is the
        // recovery layer's re-admission path.
        throw std::invalid_argument("join slots must be >= the initial worker count");
      }
    }
  }
  const data::SynthImageDataset train_set(options.train_data);
  const data::SynthImageDataset test_set(options.test_data);

  // Physical server topology: smb_servers shards × smb_replicas replicas,
  // replica r of shard s at physical index s * smb_replicas + r.  Fault
  // plans target physical indices.  With replication each shard is wrapped
  // in a ReplicatedSmb ensemble; workers only ever see the per-shard
  // SmbService, so the Fig. 6 protocol is identical either way.
  const int physical_count = options.smb_servers * options.smb_replicas;
  smb::SmbServerOptions server_options;
  server_options.integrity.checksum_chunks = options.integrity.checksum_chunks;
  server_options.integrity.verify_on_read = options.integrity.verify_on_read;
  server_options.integrity.chunk_floats = options.integrity.chunk_floats;
  std::vector<std::unique_ptr<smb::SmbServer>> servers;
  for (int n = 0; n < physical_count; ++n) {
    servers.push_back(std::make_unique<smb::SmbServer>(server_options));
  }
  std::vector<std::unique_ptr<recovery::ReplicatedSmb>> ensembles;
  if (options.smb_replicas > 1) {
    for (int s = 0; s < options.smb_servers; ++s) {
      std::vector<smb::SmbServer*> members;
      for (int r = 0; r < options.smb_replicas; ++r) {
        members.push_back(servers[static_cast<std::size_t>(s * options.smb_replicas + r)].get());
      }
      ensembles.push_back(std::make_unique<recovery::ReplicatedSmb>(
          std::move(members), options.integrity.read_repair));
    }
  }
  minimpi::Context mpi(options.workers);
  std::vector<std::unique_ptr<coll::DeviceGroup>> groups;
  for (int g = 0; g < options.workers / options.group_size; ++g) {
    groups.push_back(std::make_unique<coll::DeviceGroup>(options.group_size));
  }

  WorkerShared shared;
  shared.options = &options;
  shared.train_set = &train_set;
  if (options.smb_replicas > 1) {
    for (const auto& ensemble : ensembles) {
      shared.services.push_back(ensemble.get());
      shared.ensembles.push_back(ensemble.get());
    }
  } else {
    for (const auto& server : servers) shared.services.push_back(server.get());
  }
  shared.mpi = &mpi;
  shared.groups = &groups;
  shared.base_key = (options.seed | 1) & 0x7fffffff;
  // Slot capacity: the initial ranks plus every reserved join slot.  A
  // reserved slot whose join never fires stays kNeverJoined.
  const int capacity = options.membership != nullptr
                           ? options.membership->capacity(options.workers)
                           : options.workers;
  shared.capacity = capacity;
  shared.final_iterations.assign(static_cast<std::size_t>(capacity), 0);
  shared.worker_stats.assign(static_cast<std::size_t>(capacity), WorkerStats{});
  shared.outcomes.assign(static_cast<std::size_t>(capacity), WorkerOutcome::kFinished);
  for (int w = options.workers; w < capacity; ++w) {
    shared.outcomes[static_cast<std::size_t>(w)] = WorkerOutcome::kNeverJoined;
  }
  std::optional<elastic::MembershipService> membership;
  if (elastic_run) {
    membership.emplace(options.workers, capacity, options.smb_servers);
    shared.membership = &*membership;
  }

  dl::Net eval_net = dl::make_model(options.model_family, options.input);

  // Checkpoint store + resume validation.  A checkpoint from a different
  // run (seed, worker count or model mismatch) is ignored, not an error —
  // the run simply starts fresh.
  std::optional<recovery::CheckpointStore> checkpoint_store;
  std::optional<recovery::TrainCheckpoint> resume_checkpoint;
  std::int64_t resumed_total = 0;
  if (!options.checkpoint.directory.empty()) {
    checkpoint_store.emplace(options.checkpoint.directory);
    shared.checkpoint_store = &*checkpoint_store;
    if (options.checkpoint.resume) {
      resume_checkpoint = checkpoint_store->load_latest();
      if (resume_checkpoint.has_value() &&
          (resume_checkpoint->seed != options.seed ||
           resume_checkpoint->worker_iterations.size() !=
               static_cast<std::size_t>(options.workers) ||
           resume_checkpoint->global_weights.size() != eval_net.param_count())) {
        resume_checkpoint.reset();
      }
      if (resume_checkpoint.has_value()) {
        shared.resume = &*resume_checkpoint;
        shared.checkpoint_sequence.store(resume_checkpoint->sequence,
                                         std::memory_order_relaxed);
        for (const std::int64_t done : resume_checkpoint->worker_iterations) {
          resumed_total += done;
        }
        shared.total_iterations.store(resumed_total, std::memory_order_relaxed);
      }
    }
  }

  const std::int64_t iters_per_epoch_total =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(train_set.size()) /
                                    options.batch_size);
  const std::int64_t per_worker_per_epoch =
      std::max<std::int64_t>(1, iters_per_epoch_total / options.workers);
  shared.target_iterations = per_worker_per_epoch * options.epochs;
  shared.lr_step_iterations =
      std::max<int>(1, static_cast<int>(per_worker_per_epoch) * 4);  // 4-epoch LR steps

  const auto wall_start = std::chrono::steady_clock::now();

  // Fault scheduler: fires SMB-server freeze windows and fail-stops at
  // their wall-clock offsets from the training start.  Interruptible so a
  // short run does not wait out a plan scheduled past its end.
  std::mutex fault_mutex;
  std::condition_variable fault_cv;
  bool fault_stop = false;
  std::thread fault_thread;
  // Corruption markers that actually fired (chunks poisoned); written only
  // by the fault thread, read after it is joined.
  std::vector<std::uint64_t> injected_markers;
  if (options.faults != nullptr) {
    std::vector<fault::FaultEvent> server_events;
    for (int n = 0; n < physical_count; ++n) {
      for (const fault::FaultEvent& event : options.faults->server_freezes(n)) {
        server_events.push_back(event);
      }
      for (const fault::FaultEvent& event : options.faults->server_fail_stops(n)) {
        server_events.push_back(event);
      }
      for (const fault::FaultEvent& event : options.faults->segment_corruptions(n)) {
        server_events.push_back(event);
      }
      // Torn writes key on a write ordinal, not a wall-clock time: arm them
      // on their server up front, before any worker writes.
      for (const fault::FaultEvent& event : options.faults->torn_writes(n)) {
        servers[static_cast<std::size_t>(n)]->arm_torn_write(event.sequence, event.severity);
      }
    }
    std::sort(server_events.begin(), server_events.end(),
              [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                return a.start_seconds < b.start_seconds;
              });
    if (!server_events.empty()) {
      fault_thread = std::thread([&servers, &fault_mutex, &fault_cv, &fault_stop,
                                  &injected_markers, base_key = shared.base_key,
                                  wall_start, server_events = std::move(server_events)] {
        std::unique_lock lock(fault_mutex);
        for (const fault::FaultEvent& event : server_events) {
          const auto at = wall_start + std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::duration<double>(event.start_seconds));
          if (fault_cv.wait_until(lock, at, [&] { return fault_stop; })) return;
          smb::SmbServer& target = *servers[static_cast<std::size_t>(event.target)];
          if (event.kind == fault::FaultKind::kServerFailStop) {
            target.fail_stop();
          } else if (event.kind == fault::FaultKind::kSegmentCorruption) {
            // The W_g segment may not exist yet (the master creates it a
            // few ms into the run): retry until the flips land or the run
            // ends, so a scheduled corruption reliably fires.
            for (;;) {
              std::size_t poisoned = 0;
              try {
                poisoned = target.corrupt_floats(
                    base_key, event.sequence,
                    std::max(1, static_cast<int>(event.severity)));
              } catch (const smb::SmbUnavailable&) {
                break;  // the server fail-stopped first: never fires
              }
              if (poisoned > 0) {
                injected_markers.push_back(event.sequence);
                break;
              }
              if (fault_cv.wait_for(lock, std::chrono::milliseconds(1),
                                    [&] { return fault_stop; })) {
                break;
              }
            }
          } else {
            target.freeze_for(std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double>(event.duration_seconds)));
          }
        }
      });
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    threads.emplace_back([&shared, w] { run_worker(shared, w); });
  }

  // Re-admission monitors: one per crash the recovery schedule says to
  // heal.  Each monitor exclusively owns its worker's join; once the first
  // life exits crashed and the survivors have fenced the slot, the monitor
  // runs the replacement life inline (re-attach, adopt W_g, readmit under a
  // new incarnation).  It gives up if the run finishes first.
  std::vector<char> owned_by_monitor(static_cast<std::size_t>(options.workers), 0);
  std::vector<char> recovered(static_cast<std::size_t>(options.workers), 0);
  std::vector<std::thread> monitors;
  if (options.recovery.respawn_crashed && options.faults != nullptr) {
    for (const recovery::RecoveryEvent& event :
         recovery::recovery_schedule(options.faults->plan(), options.recovery)) {
      if (event.action != recovery::RecoveryAction::kWorkerReadmit) continue;
      const int w = event.target;
      if (w < 0 || w >= options.workers || owned_by_monitor[static_cast<std::size_t>(w)]) {
        continue;
      }
      owned_by_monitor[static_cast<std::size_t>(w)] = 1;
      monitors.emplace_back([&shared, &threads, &recovered, &options, w] {
        threads[static_cast<std::size_t>(w)].join();
        if (shared.outcomes[static_cast<std::size_t>(w)] != WorkerOutcome::kCrashed) {
          return;  // the run stopped before the planned crash fired
        }
        using Clock = std::chrono::steady_clock;
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   std::max(1.0, options.heartbeat_timeout_seconds * 5.0)));
        bool fenced = false;
        try {
          ProgressBoard board(*shared.services.front(),
                              shared.base_key + kProgressKeyOffset, options.workers,
                              /*create=*/false);
          while (Clock::now() < deadline) {
            if (board.stop_raised()) break;
            if (board.is_dead(w)) {
              fenced = true;
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          board.release();
        } catch (const smb::SmbError&) {
          return;  // the board is gone (run over / SMB lost): no respawn
        }
        if (!fenced) return;
        try {
          run_worker(shared, w, WorkerLife::kRejoin);
          recovered[static_cast<std::size_t>(w)] = 1;
        } catch (const smb::SmbError&) {
          // Re-attach raced the run's shutdown; the slot stays un-recovered.
        }
      });
    }
  }

  // Join monitors: one per planned cold join.  Each watches the progress
  // board until the cohort's max iteration count reaches the planned join
  // point, registers the join with the membership service (epoch bump +
  // shard rebalance), and runs the joining worker's life inline.  It gives
  // up if the run finishes first (the slot stays kNeverJoined).
  std::vector<char> joined_flag(static_cast<std::size_t>(capacity), 0);
  std::atomic<bool> workers_exited{false};
  std::vector<std::thread> join_monitors;
  if (options.membership != nullptr) {
    for (const elastic::MembershipEvent& event : options.membership->joins()) {
      const int w = event.worker;
      if (w < options.workers || w >= capacity) continue;
      join_monitors.emplace_back([&shared, &options, &joined_flag, &workers_exited, event,
                                  w] {
        bool go = false;
        try {
          smb::RetryPolicy retry;
          common::Rng backoff_rng(options.seed ^ 0x90149ULL ^
                                  static_cast<std::uint64_t>(w));
          int attempt = 0;
          std::optional<ProgressBoard> board;
          while (!workers_exited.load(std::memory_order_acquire)) {
            try {
              board.emplace(*shared.services.front(),
                            shared.base_key + kProgressKeyOffset, 0, /*create=*/false);
              break;
            } catch (const smb::SmbNotFound&) {
              std::this_thread::sleep_for(smb::backoff_delay(retry, ++attempt, backoff_rng));
            }
          }
          if (!board.has_value()) return;
          while (!workers_exited.load(std::memory_order_acquire)) {
            if (board->stop_raised()) break;
            if (board->max_iterations() >= event.at_iteration) {
              go = true;
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          board->release();
        } catch (const smb::SmbError&) {
          return;  // the board is gone (run over / SMB lost): no join
        }
        if (!go) return;
        shared.membership->join(w, event.at_iteration);
        try {
          run_worker(shared, w, WorkerLife::kColdJoin);
          joined_flag[static_cast<std::size_t>(w)] = 1;
        } catch (const smb::SmbError&) {
          // The join raced the run's shutdown; the slot never trained.
        }
      });
    }
  }

  std::atomic<bool> joined{false};
  std::thread joiner([&threads, &monitors, &join_monitors, &owned_by_monitor,
                      &workers_exited, &joined] {
    for (std::size_t w = 0; w < threads.size(); ++w) {
      if (!owned_by_monitor[w]) threads[w].join();
    }
    for (std::thread& monitor : monitors) monitor.join();
    // The initial cohort is gone: tell waiting join monitors to stand down
    // (one whose join already fired keeps running its worker to completion).
    workers_exited.store(true, std::memory_order_release);
    for (std::thread& monitor : join_monitors) monitor.join();
    joined.store(true, std::memory_order_release);
  });

  // Orchestrator: snapshot and evaluate the global weights at
  // epoch-equivalent boundaries (total iterations across all workers).
  // The attach races worker 0's segment creation, so it retries with
  // backoff; it gives up once the workers are gone (a fault plan may have
  // crashed every worker before the segments appeared).
  TrainResult result;
  ShardedBuffer global;
  try {
    smb::RetryPolicy policy;
    common::Rng backoff_rng(options.seed ^ 0x0bcull);
    int attempt = 0;
    while (!joined.load(std::memory_order_acquire)) {
      try {
        global = ShardedBuffer::attach(shared.services, shared.base_key,
                                       eval_net.param_count());
        break;
      } catch (const smb::SmbNotFound&) {
        std::this_thread::sleep_for(smb::backoff_delay(policy, ++attempt, backoff_rng));
      }
    }
    if (!global.valid()) {
      try {
        global = ShardedBuffer::attach(shared.services, shared.base_key,
                                       eval_net.param_count());
      } catch (const smb::SmbNotFound&) {
        // every worker crashed before creating the segments; no curve
      }
    }
  } catch (const smb::SmbUnavailable&) {
    // the SMB (all replicas) fail-stopped before the attach landed; no curve
  }
  std::vector<float> snapshot(global.valid() ? global.size() : 0);

  const std::int64_t total_target =
      shared.target_iterations * static_cast<std::int64_t>(options.workers);
  const std::int64_t per_epoch_total =
      std::max<std::int64_t>(1, total_target / options.epochs);
  // A resumed run's curve continues after the epochs the interrupted run
  // already covered.
  int next_epoch = 1 + static_cast<int>(resumed_total / per_epoch_total);
  auto catch_up_evals = [&] {
    if (!global.valid()) return;
    const std::int64_t done = shared.total_iterations.load(std::memory_order_relaxed);
    while (next_epoch < options.epochs &&
           done >= static_cast<std::int64_t>(next_epoch) * per_epoch_total) {
      try {
        global.read(snapshot);
      } catch (const smb::SmbUnavailable&) {
        return;  // SMB permanently gone mid-run; keep the curve so far
      }
      dl::copy_params_from(eval_net, snapshot);
      const EvalResult eval = evaluate(eval_net, test_set);
      result.curve.push_back(EpochMetrics{next_epoch, eval.loss, eval.accuracy});
      ++next_epoch;
    }
  };
  while (!joined.load(std::memory_order_acquire)) {
    catch_up_evals();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  joiner.join();
  catch_up_evals();

  // Stop the fault scheduler before scrubbing: every corruption that will
  // fire has now fired, so the final scrub below sees all of them.
  if (fault_thread.joinable()) {
    {
      std::scoped_lock lock(fault_mutex);
      fault_stop = true;
    }
    fault_cv.notify_all();
    fault_thread.join();
  }

  // End-of-training scrub: catch (and repair) corruption injected after the
  // last exchange, while the orchestrator still holds the segments and
  // before the final weights are evaluated.
  if (options.integrity.enabled() && options.integrity.scrub_on_checkpoint) {
    for (const auto& ensemble : ensembles) {
      try {
        ensemble->scrub();
      } catch (const smb::SmbError&) {
        // every replica gone: nothing left to scrub
      }
    }
  }

  if (global.valid()) {
    try {
      global.read(snapshot);
      dl::copy_params_from(eval_net, snapshot);
      const EvalResult final_eval = evaluate(eval_net, test_set);
      result.final_accuracy = final_eval.accuracy;
      result.final_loss = final_eval.loss;
      if (result.curve.empty() || result.curve.back().epoch < options.epochs) {
        result.curve.push_back(
            EpochMetrics{options.epochs, final_eval.loss, final_eval.accuracy});
      }
      global.release();
    } catch (const smb::SmbError&) {
      // SMB permanently gone: no final evaluation, nothing to release
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.iterations_per_worker = shared.final_iterations;
  result.worker_stats = std::move(shared.worker_stats);
  result.worker_outcomes = shared.outcomes;
  for (int w = 0; w < capacity; ++w) {
    const WorkerOutcome outcome = shared.outcomes[static_cast<std::size_t>(w)];
    if (outcome == WorkerOutcome::kCrashed || outcome == WorkerOutcome::kFenced ||
        outcome == WorkerOutcome::kEvicted) {
      result.dead_workers.push_back(w);
    }
    if (w < options.workers && recovered[static_cast<std::size_t>(w)]) {
      result.recovered_workers.push_back(w);
    }
  }
  if (membership.has_value()) {
    result.joined_workers = membership->joined();
    result.drained_workers = membership->drained();
    result.rebalances = membership->rebalances();
    result.quarantine_events = membership->quarantine_events();
    // Fingerprint the membership transitions actually executed, in planned
    // order, exactly like the recovery fingerprint below: the sim twin
    // filters the same planned schedule by its own execution, so equal
    // fingerprints mean identical membership histories across the stacks.
    const std::vector<elastic::MembershipChange> planned = elastic::membership_schedule(
        options.membership, options.faults != nullptr ? &options.faults->plan() : nullptr,
        options.membership_policy, options.workers);
    result.membership_fingerprint = elastic::membership_fingerprint(
        elastic::filter_executed(planned, membership->execution()));
  }
  result.checkpoints_taken = shared.checkpoints_taken.load(std::memory_order_relaxed);
  result.resumed_iterations = resumed_total;
  for (const auto& ensemble : ensembles) {
    result.smb_failovers += static_cast<std::int64_t>(ensemble->failover_count());
  }

  // Integrity observability: distinct detected / torn-applied markers across
  // the physical servers, repair and scrub counts from the ensembles,
  // rollbacks from the workers.
  std::vector<std::uint64_t> detected;
  std::vector<std::uint64_t> torn_applied;
  for (const auto& server : servers) {
    for (const std::uint64_t marker : server->detected_markers()) {
      if (std::find(detected.begin(), detected.end(), marker) == detected.end()) {
        detected.push_back(marker);
      }
    }
    for (const std::uint64_t marker : server->torn_applied_markers()) {
      if (std::find(torn_applied.begin(), torn_applied.end(), marker) == torn_applied.end()) {
        torn_applied.push_back(marker);
      }
    }
  }
  std::vector<std::uint64_t> repaired;
  for (const auto& ensemble : ensembles) {
    result.integrity_repairs += static_cast<std::int64_t>(ensemble->repairs());
    result.scrub_passes += static_cast<std::int64_t>(ensemble->scrub_passes());
    for (const std::uint64_t marker : ensemble->repaired_markers()) {
      if (std::find(repaired.begin(), repaired.end(), marker) == repaired.end()) {
        repaired.push_back(marker);
      }
    }
  }
  result.corruptions_detected = static_cast<std::int64_t>(detected.size());
  result.integrity_rollbacks = shared.integrity_rollbacks.load(std::memory_order_relaxed);

  // Fingerprint the recovery actions actually executed, in planned order:
  // a failover counts only if the fail-stopped replica really was the
  // active one at the time, a readmit only if the replacement ran.  The sim
  // twin computes the same thing from the same plan, so equal fingerprints
  // mean identical recovery schedules across the stacks.
  if (options.faults != nullptr) {
    std::vector<std::vector<int>> failed_active(ensembles.size());
    for (std::size_t s = 0; s < ensembles.size(); ++s) {
      failed_active[s] = ensembles[s]->failover_log();
    }
    std::vector<recovery::RecoveryEvent> executed;
    for (const recovery::RecoveryEvent& event :
         recovery::recovery_schedule(options.faults->plan(), options.recovery)) {
      if (event.action == recovery::RecoveryAction::kSmbFailover) {
        const int shard = event.target / options.smb_replicas;
        const int replica = event.target % options.smb_replicas;
        if (shard < 0 || static_cast<std::size_t>(shard) >= failed_active.size()) continue;
        auto& log = failed_active[static_cast<std::size_t>(shard)];
        const auto it = std::find(log.begin(), log.end(), replica);
        if (it != log.end()) {
          executed.push_back(event);
          log.erase(it);
        }
      } else if (event.action == recovery::RecoveryAction::kWorkerReadmit) {
        if (event.target >= 0 && event.target < options.workers &&
            recovered[static_cast<std::size_t>(event.target)]) {
          executed.push_back(event);
        }
      }
    }
    result.recovery_fingerprint = recovery::schedule_fingerprint(executed);

    // Fingerprint the integrity events actually executed the same way: the
    // planned schedule (plan order) filtered by the marker sets this run
    // observed.  The sim twin filters the identical schedule by its own
    // outcome, so equal fingerprints mean identical integrity histories.
    recovery::IntegrityOutcome integrity_outcome;
    integrity_outcome.injected = injected_markers;
    integrity_outcome.detected = detected;
    integrity_outcome.repaired = repaired;
    integrity_outcome.torn_applied = torn_applied;
    const std::vector<recovery::IntegrityEvent> planned_integrity =
        recovery::integrity_schedule(options.faults->plan(), options.integrity);
    result.integrity_fingerprint = recovery::integrity_fingerprint(
        recovery::executed_integrity(planned_integrity, integrity_outcome));
  }
  return result;
}

}  // namespace shmcaffe::core
