// A logical float buffer sharded across multiple SMB servers.
//
// The paper's concluding future work: "improve the performance of the SMB
// framework by using multiple SMB servers."  ShardedBuffer implements the
// data-plane side functionally: one logical parameter buffer of `total`
// elements is split into near-equal contiguous shards, one per server;
// reads/writes fan out to every shard, and accumulate_into() runs the
// server-side accumulate per shard (each server serialises only its own
// shard's updates, which is exactly where the bandwidth/accumulate win
// comes from).  With a single server it degenerates to a plain segment.
#pragma once

#include <span>
#include <vector>

#include "smb/server.h"

namespace shmcaffe::core {

class ShardedBuffer {
 public:
  ShardedBuffer() = default;

  /// Creates per-server segments under `key` (same key on every server).
  /// Servers are any SmbService — a raw SmbServer or a replicated ensemble.
  static ShardedBuffer create(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                              std::size_t total);
  static ShardedBuffer create(std::span<smb::SmbServer* const> servers, smb::ShmKey key,
                              std::size_t total);

  /// Attaches to segments previously created under `key`.
  static ShardedBuffer attach(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                              std::size_t total);
  static ShardedBuffer attach(std::span<smb::SmbServer* const> servers, smb::ShmKey key,
                              std::size_t total);

  [[nodiscard]] std::size_t size() const { return total_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool valid() const { return !shards_.empty(); }

  /// Reads the whole logical buffer (dst.size() == size()).
  void read(std::span<float> dst) const;

  /// Writes the whole logical buffer (src.size() == size()).
  void write(std::span<const float> src);

  /// Server-side accumulate of this buffer into `dst`, shard by shard.
  /// Both buffers must have identical sharding (same servers, same size).
  void accumulate_into(ShardedBuffer& dst) const;

  /// Releases every shard; the buffer becomes invalid.
  void release();

 private:
  struct Shard {
    smb::SmbService* server = nullptr;
    smb::Handle handle;
    std::size_t offset = 0;
    std::size_t count = 0;
  };

  static ShardedBuffer build(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                             std::size_t total, bool create);

  std::vector<Shard> shards_;
  std::size_t total_ = 0;
};

}  // namespace shmcaffe::core
