// A logical float buffer sharded across multiple SMB servers.
//
// The paper's concluding future work: "improve the performance of the SMB
// framework by using multiple SMB servers."  ShardedBuffer implements the
// data-plane side functionally: one logical parameter buffer of `total`
// elements is split into near-equal contiguous shards, one per server;
// reads/writes fan out to every shard, and accumulate_into() runs the
// server-side accumulate per shard (each server serialises only its own
// shard's updates, which is exactly where the bandwidth/accumulate win
// comes from).  With a single server it degenerates to a plain segment.
//
// Thread safety: the shard table itself is protected by a rank-120
// OrderedMutex ("core.sharded_buffer.shards") so a trainer thread fanning
// out a read cannot race a release/re-attach from another thread (the
// Fig. 6 exchange thread moves buffers around).  Per-element data races
// are the servers' business — each shard operation is serialised by the
// owning SmbServer's segment lock (rank 200), which the shard lock ranks
// below.
#pragma once

#include <span>
#include <vector>

#include "common/ordered_mutex.h"
#include "smb/server.h"

namespace shmcaffe::core {

class ShardedBuffer {
 public:
  ShardedBuffer() = default;

  // The shard-table mutex pins identity; buffers move by transferring the
  // shard table under both locks (trainer re-targets buffers on failover
  // via move-assignment).  Copying would double-release SMB handles.
  ShardedBuffer(const ShardedBuffer&) = delete;
  ShardedBuffer& operator=(const ShardedBuffer&) = delete;
  ShardedBuffer(ShardedBuffer&& other) noexcept;
  ShardedBuffer& operator=(ShardedBuffer&& other) noexcept;

  /// Creates per-server segments under `key` (same key on every server).
  /// Servers are any SmbService — a raw SmbServer or a replicated ensemble.
  static ShardedBuffer create(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                              std::size_t total);
  static ShardedBuffer create(std::span<smb::SmbServer* const> servers, smb::ShmKey key,
                              std::size_t total);

  /// Attaches to segments previously created under `key`.
  static ShardedBuffer attach(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                              std::size_t total);
  static ShardedBuffer attach(std::span<smb::SmbServer* const> servers, smb::ShmKey key,
                              std::size_t total);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] bool valid() const;

  /// Reads the whole logical buffer (dst.size() == size()).  `start_shard`
  /// rotates the fan-out order — shard (start_shard + k) % shard_count() on
  /// step k — so elastic workers spread their first (contended) access
  /// across the servers by home shard instead of all hammering shard 0.
  void read(std::span<float> dst, std::size_t start_shard = 0) const;

  /// One pinned zero-copy view per shard, covering the logical buffer.
  /// `offset` is the shard's position in the logical index space; views are
  /// returned in ascending offset order (the fan-out still rotates from
  /// `start_shard` so pin-time contention spreads like read()).  No bytes
  /// move: consumers iterate the views in place and drop them to unpin.
  struct PinnedShard {
    std::size_t offset = 0;
    // Carrier struct for the fan-out result: the view outlives read_pinned's
    // frame by design and is dropped by the consumer to unpin.
    smb::PinnedFloats view SHMCAFFE_PIN_ESCAPE;
  };
  [[nodiscard]] SHMCAFFE_PIN_ESCAPE std::vector<PinnedShard> read_pinned(
      std::size_t start_shard = 0) const;

  /// Writes the whole logical buffer (src.size() == size()); `start_shard`
  /// rotates like read().
  void write(std::span<const float> src, std::size_t start_shard = 0);

  /// Server-side accumulate of this buffer into `dst`, shard by shard in
  /// rotated order.  Both buffers must have identical sharding (same
  /// servers, same size) and be distinct objects.
  void accumulate_into(ShardedBuffer& dst, std::size_t start_shard = 0) const;

  /// Releases every shard; the buffer becomes invalid.
  void release();

 private:
  struct Shard {
    smb::SmbService* server = nullptr;
    smb::Handle handle;
    std::size_t offset = 0;
    std::size_t count = 0;
  };

  static ShardedBuffer build(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                             std::size_t total, bool create);

  void read_locked(std::span<float> dst, std::size_t start_shard) const
      SHMCAFFE_REQUIRES(shards_mutex_);
  void write_locked(std::span<const float> src, std::size_t start_shard)
      SHMCAFFE_REQUIRES(shards_mutex_);
  void release_locked() SHMCAFFE_REQUIRES(shards_mutex_);

  mutable common::OrderedMutex shards_mutex_{"core.sharded_buffer.shards",
                                             common::lockrank::kShardedBuffer};
  std::vector<Shard> shards_ SHMCAFFE_GUARDED_BY(shards_mutex_);
  std::size_t total_ SHMCAFFE_GUARDED_BY(shards_mutex_) = 0;
};

}  // namespace shmcaffe::core
