// Equation (8): the paper's closed-form SEASGD iteration-time model.
//
//   T_iter = max[T_comp, (T_wwi + T_ugw)] + T_rgw + T_ulw
//
// This is the contention-free single-worker prediction; the discrete-event
// simulation generalises it with bandwidth sharing, accumulate serialisation
// and jitter.  An ablation bench cross-checks the two (they must agree for
// one worker with jitter disabled).
#pragma once

#include <algorithm>

#include "cluster/model_profiles.h"

namespace shmcaffe::core {

struct AnalyticIteration {
  SimTime t_comp = 0;  ///< forward + backward + local solver update
  SimTime t_rgw = 0;   ///< reading the global weight
  SimTime t_ulw = 0;   ///< updating the local weight from the global copy
  SimTime t_wwi = 0;   ///< writing the weight increment (overlapped)
  SimTime t_ugw = 0;   ///< server-side global accumulate (overlapped)

  [[nodiscard]] SimTime iteration() const {
    return std::max(t_comp, t_wwi + t_ugw) + t_rgw + t_ulw;
  }
  [[nodiscard]] SimTime communication() const { return iteration() - t_comp; }
};

/// Contention-free eq. (8) terms for one worker of `model` on `spec`.
inline AnalyticIteration analytic_seasgd_iteration(const cluster::ModelProfile& model,
                                                   const cluster::TestbedSpec& spec) {
  AnalyticIteration result;
  result.t_comp = model.comp_time;
  const double wire = spec.hca_bandwidth * spec.fabric_efficiency;
  result.t_rgw = units::transfer_time(model.param_bytes, wire);
  result.t_wwi = units::transfer_time(model.param_bytes, wire);
  result.t_ugw = units::transfer_time(model.param_bytes, spec.smb_accumulate_bandwidth);
  result.t_ulw = units::transfer_time(model.param_bytes, spec.gpu_update_bandwidth);
  return result;
}

}  // namespace shmcaffe::core
