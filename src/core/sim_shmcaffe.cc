#include "core/sim_shmcaffe.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "coll/pcie_model.h"
#include "fault/injector.h"
#include "net/fabric.h"
#include "recovery/schedule.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "smb/server.h"
#include "smb/sim_smb.h"

namespace shmcaffe::core {
namespace {

struct GroupStats {
  SimTime comp = 0;
  SimTime comm = 0;
  std::int64_t completed = 0;  ///< iterations actually run (<= target on crash)
  bool crashed = false;
  bool recovered = false;    ///< slot re-admitted after its crash
  bool drained = false;      ///< left voluntarily at its planned drain point
  bool evicted = false;      ///< removed by the straggler-quarantine policy
  bool joined_late = false;  ///< cold join above the initial cohort
};

/// Shared elastic-membership state of one simulated run: the registry both
/// the initial cohort and late joiners transition through, plus the
/// plan-driven join triggers ("the progress board reached iteration X").
struct ElasticSimState {
  elastic::MembershipService* service = nullptr;
  const elastic::MembershipPlan* plan = nullptr;
  elastic::MembershipPolicy policy;
  SimTime t_ulw = 0;               ///< joiner catch-up local-update time
  std::int64_t max_completed = 0;  ///< cohort max iteration (the join trigger)
  std::int64_t staleness_violations = 0;
  std::vector<elastic::MembershipEvent> pending_joins;  ///< plan order
  std::size_t next_join = 0;
  std::function<void(const elastic::MembershipEvent&)> spawn_join;
};

/// Fires every planned join whose trigger iteration the cohort has reached —
/// the sim analogue of the functional join monitors watching the board.
void maybe_spawn_joins(ElasticSimState& elastic) {
  while (elastic.next_join < elastic.pending_joins.size() &&
         elastic.pending_joins[elastic.next_join].at_iteration <= elastic.max_completed) {
    elastic.spawn_join(elastic.pending_joins[elastic.next_join]);
    ++elastic.next_join;
  }
}

/// Timing model of the recovery layer, derived from the fault plan before
/// the measurement run (everything here is deterministic in the plan).
struct SimRecoveryContext {
  /// Service-pause windows [start, end) in absolute sim time: one per SMB
  /// primary failover (detection + promotion latency).  Sorted by start.
  std::vector<std::pair<SimTime, SimTime>> pauses;
  /// Earliest instant some shard has no live replica left; an exchange at
  /// or after this time fail-stops the worker (mirrors SmbUnavailable).
  SimTime smb_dead_at = std::numeric_limits<SimTime>::max();
  /// Re-admission enabled (policy.respawn_crashed, async only).
  bool readmit = false;
  SimTime readmit_delay = 0;
};

/// The instant SMB service resumes if `now` falls inside a failover pause
/// (chained windows extend each other); `now` itself when unobstructed.
SimTime service_resume_time(const std::vector<std::pair<SimTime, SimTime>>& pauses,
                            SimTime now) {
  SimTime until = now;
  for (const auto& [begin, end] : pauses) {
    if (begin <= until && until < end) until = end;
  }
  return until;
}

/// One group's endpoint on one SMB server (the global buffer is sharded
/// across servers; shard i holds `bytes` of W_g and of this group's dW).
struct ShardEndpoint {
  smb::SimSmbClient* client = nullptr;
  smb::Handle global;
  smb::Handle delta;
  std::int64_t bytes = 0;
};

sim::Task<void> read_global(sim::Simulation& sim, std::vector<ShardEndpoint>& shards,
                            bool zero_copy) {
  std::vector<sim::Task<void>> reads;
  reads.reserve(shards.size());
  for (ShardEndpoint& shard : shards) {
    reads.push_back(zero_copy ? shard.client->read_pinned(shard.global, shard.bytes)
                              : shard.client->read(shard.global, shard.bytes));
  }
  co_await sim::when_all(sim, std::move(reads));
}

sim::Task<void> flush_increment(sim::Simulation& sim, std::vector<ShardEndpoint>& shards) {
  auto flush_one = [](ShardEndpoint& shard) -> sim::Task<void> {
    co_await shard.client->write(shard.delta, shard.bytes);        // T.A1: T_wwi
    co_await shard.client->accumulate(shard.delta, shard.global);  // T.A2-4: T_ugw
  };
  std::vector<sim::Task<void>> flushes;
  flushes.reserve(shards.size());
  for (ShardEndpoint& shard : shards) flushes.push_back(flush_one(shard));
  co_await sim::when_all(sim, std::move(flushes));
}

/// The Fig. 6 update thread of one group root.
sim::Task<void> update_thread(sim::Simulation& sim, std::vector<ShardEndpoint>& shards,
                              sim::Semaphore& wake, sim::SimMutex& exchange_mutex,
                              bool& stopping) {
  for (;;) {
    co_await wake.acquire();
    if (stopping) co_return;
    sim::SimLock lock = co_await exchange_mutex.scoped_lock();
    co_await flush_increment(sim, shards);
  }
}

sim::Task<void> group_worker(sim::Simulation& sim, const SimShmCaffeOptions& options,
                             std::vector<ShardEndpoint> shards, int group,
                             int total_groups, const SimRecoveryContext& recovery,
                             GroupStats& stats, ElasticSimState* elastic) {
  const cluster::ModelProfile& model = cluster::profile(options.model);
  const cluster::TestbedSpec& spec = options.testbed;
  const coll::PcieModel pcie{spec.pcie_bus_bandwidth, 20 * units::kMicrosecond};
  const int s = options.group_size;
  common::Rng rng = common::Rng(options.seed).fork(static_cast<std::uint64_t>(group) + 1);

  // T_ulw: elementwise local-weight update from the global copy.
  const SimTime t_ulw = units::transfer_time(model.param_bytes, spec.gpu_update_bandwidth);

  sim::Semaphore wake(sim, 0);
  sim::SimMutex exchange_mutex(sim);
  bool stopping = false;
  sim::JoinHandle updater =
      sim.spawn(update_thread(sim, shards, wake, exchange_mutex, stopping));

  // A single group has nobody to share with: the paper's "(S#, A0)" rows
  // are plain synchronous SGD with no SMB exchange, and one ShmCaffe worker
  // degenerates to standalone Caffe.
  const bool use_smb = total_groups > 1;

  // Faults are keyed to the group's root worker: a synchronous group marches
  // in lockstep, so its members crash or stall together, before any
  // intra-group collective.
  const int root_worker = group * s;

  // Static heterogeneity: a planted slow machine computes every minibatch
  // slower; ComputeJitter then adds its transient noise on top.
  const auto comp_base = static_cast<SimTime>(
      static_cast<double>(model.comp_time) * options.heterogeneity.compute_scale(root_worker));

  // Elastic runs have group_size == 1, so `group` is the worker id.
  const std::int64_t drain_at = elastic != nullptr && elastic->plan != nullptr
                                    ? elastic->plan->drain_iteration(group)
                                    : -1;
  int stall_violations = 0;

  std::vector<SimTime> member_comps(static_cast<std::size_t>(s));
  bool crash_consumed = false;
  for (std::int64_t it = 0; it < options.iterations; ++it) {
    if (options.faults != nullptr && !crash_consumed &&
        options.faults->crashes_at(root_worker, it)) {
      crash_consumed = true;  // a worker dies once; a replacement never re-crashes
      stats.crashed = true;
      if (!recovery.readmit) {
        break;  // fail-stop: no further exchanges; survivors keep training
      }
      // Re-admission: the replacement attaches after the modelled respawn
      // delay, adopts W_g (a full global read + local update), and resumes
      // the slot's remaining iterations under its new incarnation.
      co_await sim.delay(recovery.readmit_delay);
      if (use_smb) {
        // Catch-up adoption always copies (the adopted weights outlive the
        // read window), matching the functional trainer.
        co_await read_global(sim, shards, /*zero_copy=*/false);
        co_await sim.delay(t_ulw);
      }
      stats.recovered = true;
    }
    if (drain_at >= 0 && it >= drain_at) {
      // Voluntary drain: flush the pipeline, deregister (rebalancing the
      // shard map), and leave with the slot's progress intact.
      co_await sim.delay(units::from_seconds(elastic->policy.drain_flush_seconds));
      elastic->service->drain(group, drain_at);
      co_await sim.delay(units::from_seconds(elastic->policy.rebalance_seconds));
      stats.drained = true;
      break;
    }
    const bool sharing = use_smb && it % options.update_interval == 0;
    const SimTime iter_start = sim.now();
    bool evicted_now = false;
    if (options.faults != nullptr) {
      const double stall = options.faults->stall_seconds(root_worker, it);
      // The stall lands inside the iteration window, so the per-member
      // accounting below books it as non-overlapped (comm-side) time.
      if (stall > 0.0) {
        co_await sim.delay(units::from_seconds(stall));
        if (elastic != nullptr && !crash_consumed && elastic->policy.straggler_detection &&
            stall >= elastic->policy.quarantine_stall_seconds) {
          // The planned quarantine chain (membership_schedule): each
          // qualifying stall demotes the worker and readmits it once the
          // stall is over (it has caught back up by construction — the sim
          // worker reports at iteration granularity); the Nth one evicts.
          ++stall_violations;
          if (stall_violations >= elastic->policy.evict_after_violations) {
            elastic->service->evict(group, it);
            co_await sim.delay(units::from_seconds(elastic->policy.rebalance_seconds));
            evicted_now = true;
          } else {
            elastic->service->quarantine(group, it);
            elastic->service->readmit_contributor(group, it);
          }
        }
      }
    }
    if (evicted_now) {
      stats.evicted = true;
      break;
    }
    if (sharing) {
      // Some shard lost its last replica: the exchange can never complete
      // (the functional stack's SmbUnavailable) — an infrastructure-induced
      // fail-stop of this worker.
      if (sim.now() >= recovery.smb_dead_at) {
        stats.crashed = true;
        break;
      }
      // A failover in progress pauses SMB service for the detection +
      // promotion latency; the exchange waits it out.
      const SimTime resume_at = service_resume_time(recovery.pauses, sim.now());
      if (resume_at > sim.now()) co_await sim.delay(resume_at - sim.now());
      // Mutually exclusive with the update thread; a still-running previous
      // flush blocks us here (the paper's T.A5 wait).
      {
        sim::SimLock lock = co_await exchange_mutex.scoped_lock();
        co_await read_global(sim, shards, options.zero_copy_reads);  // T1: T_rgw
        co_await sim.delay(t_ulw);          // T2: T_ulw
        if (!options.overlap_update) {
          // Ablation: flush the increment inline instead of overlapping.
          co_await flush_increment(sim, shards);
        }
      }
      if (options.overlap_update) wake.release();  // T3
    }

    // T4 + T5: the group's computation; a synchronous group proceeds when
    // its slowest member finishes (members' idle waits count as comm).
    SimTime comp_max = 0;
    for (SimTime& c : member_comps) {
      c = options.jitter.sample(rng, comp_base);
      comp_max = std::max(comp_max, c);
    }
    co_await sim.delay(comp_max);

    if (s > 1) {
      // Hybrid: intra-node gradient allreduce before the local update and
      // the root's broadcast of refreshed weights after the exchange.
      const SimTime intra = pcie.ring_allreduce_time(s, model.param_bytes) +
                            (sharing ? pcie.broadcast_time(s, model.param_bytes) : 0);
      co_await sim.delay(intra);
    }

    // Per-member accounting, matching how the paper measures: computation
    // is the member's own minibatch time; communication is everything else
    // in the iteration (transfers, lock waits, straggler waits).
    const SimTime iter_time = sim.now() - iter_start;
    for (SimTime c : member_comps) {
      stats.comp += c;
      stats.comm += iter_time - c;
    }
    stats.completed += 1;

    if (elastic != nullptr) {
      // Heterogeneity health metric: fresh progress already further behind
      // the cohort maximum than the policy's staleness bound.
      if (elastic->max_completed - (it + 1) >
          static_cast<std::int64_t>(elastic->policy.staleness_bound_iterations)) {
        ++elastic->staleness_violations;
      }
      if (it + 1 > elastic->max_completed) elastic->max_completed = it + 1;
      maybe_spawn_joins(*elastic);
    }
  }

  stopping = true;
  wake.release();
  co_await updater;
}

/// A cold join: the functional stack's join-monitor + run_worker(kColdJoin)
/// path.  Provisioning latency, then delta-segment creation, registration
/// (which rebalances the shard map), W_g adoption, and a full worker life.
sim::Task<void> join_worker(sim::Simulation& sim, const SimShmCaffeOptions& options,
                            std::vector<smb::SimSmbClient*> clients,
                            std::vector<smb::Handle> global_handles,
                            std::vector<std::int64_t> shard_sizes,
                            elastic::MembershipEvent event, int total_groups,
                            const SimRecoveryContext& recovery, GroupStats& stats,
                            ElasticSimState& elastic) {
  co_await sim.delay(units::from_seconds(elastic.policy.join_delay_seconds));
  std::vector<ShardEndpoint> shards(clients.size());
  for (std::size_t n = 0; n < clients.size(); ++n) {
    ShardEndpoint& ep = shards[n];
    ep.client = clients[n];
    ep.global = global_handles[n];
    ep.bytes = shard_sizes[n];
    ep.delta = co_await clients[n]->create(
        1000 + static_cast<smb::ShmKey>(event.worker), ep.bytes);
  }
  elastic.service->join(event.worker, event.at_iteration);
  co_await sim.delay(units::from_seconds(elastic.policy.rebalance_seconds));
  // Catch-up: adopt W_g before contributing (global read + local update);
  // always a copy read, like the functional trainer's catch-up path.
  co_await read_global(sim, shards, /*zero_copy=*/false);
  co_await sim.delay(elastic.t_ulw);
  stats.joined_late = true;
  co_await group_worker(sim, options, std::move(shards), event.worker, total_groups,
                        recovery, stats, &elastic);
}

}  // namespace

cluster::PlatformTiming simulate_shmcaffe(const SimShmCaffeOptions& options) {
  if (options.workers < 1 || options.group_size < 1 ||
      options.workers % options.group_size != 0) {
    throw std::invalid_argument("workers must be a multiple of group_size");
  }
  if (options.smb_servers < 1) throw std::invalid_argument("smb_servers must be >= 1");
  if (options.smb_replicas < 1) throw std::invalid_argument("smb_replicas must be >= 1");
  if (options.recovery.respawn_crashed && options.group_size != 1) {
    // Mirrors the functional trainer: a replacement cannot rejoin a hybrid
    // group mid-collective.
    throw std::invalid_argument("respawn_crashed requires group_size == 1");
  }
  const int groups = options.workers / options.group_size;
  const bool elastic_run =
      options.membership != nullptr || options.membership_policy.straggler_detection;
  if (elastic_run && options.group_size != 1) {
    // Mirrors the functional trainer: membership changes cannot resize a
    // hybrid group mid-collective.
    throw std::invalid_argument("elastic membership requires group_size == 1");
  }
  if (options.membership != nullptr) {
    for (const elastic::MembershipEvent& ev : options.membership->joins()) {
      if (ev.worker < groups) {
        throw std::invalid_argument("join slots must be >= the initial worker count");
      }
    }
  }
  // Cold joins occupy slots [groups, capacity); without a plan the cohort
  // is exactly the initial one.
  const int capacity =
      options.membership != nullptr ? options.membership->capacity(groups) : groups;
  const int nservers = options.smb_servers;
  const cluster::ModelProfile& model = cluster::profile(options.model);
  const cluster::TestbedSpec& spec = options.testbed;

  sim::Simulation sim;
  net::FabricOptions fabric_options;
  fabric_options.efficiency = spec.fabric_efficiency;
  net::Fabric fabric(sim, fabric_options);

  smb::SimSmbOptions smb_options;
  smb_options.server_bandwidth = spec.hca_bandwidth;
  smb_options.accumulate_bandwidth = spec.smb_accumulate_bandwidth;
  std::vector<std::unique_ptr<smb::SimSmbServer>> servers;
  for (int n = 0; n < nservers; ++n) {
    servers.push_back(std::make_unique<smb::SimSmbServer>(sim, fabric, smb_options));
    servers.back()->start();
  }

  // Shard the parameter buffer evenly across the servers.
  auto shard_bytes = [&](int server) {
    const std::int64_t base = model.param_bytes / nservers;
    return base + (server < model.param_bytes % nservers ? 1 : 0);
  };

  // One client per (slot, server); each worker exchanges all its shards in
  // parallel.  The parallel shard streams still share the node's single
  // HCA, so each stream is capped at hca_bandwidth / nservers; a planted
  // slow machine's NIC divides that further (heterogeneity).
  const double stream_bandwidth =
      std::min(spec.smb_client_stream_bandwidth, spec.hca_bandwidth / nservers);
  std::vector<std::vector<std::unique_ptr<smb::SimSmbClient>>> clients(
      static_cast<std::size_t>(capacity));
  for (int g = 0; g < capacity; ++g) {
    const double slot_bandwidth = stream_bandwidth / options.heterogeneity.nic_scale(g);
    for (int n = 0; n < nservers; ++n) {
      clients[static_cast<std::size_t>(g)].push_back(std::make_unique<smb::SimSmbClient>(
          *servers[static_cast<std::size_t>(n)],
          "group" + std::to_string(g) + ".srv" + std::to_string(n), slot_bandwidth));
    }
  }

  // Master (group 0) creates the global shards; every initial group then
  // creates its private delta shards.  Global handles are kept so late
  // joiners can adopt W_g when they arrive.
  std::vector<std::vector<ShardEndpoint>> endpoints(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    endpoints[static_cast<std::size_t>(g)].resize(static_cast<std::size_t>(nservers));
  }
  std::vector<smb::Handle> global_handles(static_cast<std::size_t>(nservers));
  std::vector<std::int64_t> shard_sizes(static_cast<std::size_t>(nservers));
  for (int n = 0; n < nservers; ++n) {
    shard_sizes[static_cast<std::size_t>(n)] = shard_bytes(n);
  }
  sim.spawn([](std::vector<std::vector<std::unique_ptr<smb::SimSmbClient>>>& cl,
               std::vector<std::vector<ShardEndpoint>>& eps,
               std::vector<smb::Handle>& globals, int ngroups, int nsrv,
               auto bytes_of) -> sim::Task<> {
    for (int n = 0; n < nsrv; ++n) {
      const std::int64_t bytes = bytes_of(n);
      smb::Handle global;
      for (int g = 0; g < ngroups; ++g) {
        auto& client = *cl[static_cast<std::size_t>(g)][static_cast<std::size_t>(n)];
        if (g == 0) global = co_await client.create(1, bytes);
        ShardEndpoint& ep = eps[static_cast<std::size_t>(g)][static_cast<std::size_t>(n)];
        ep.client = &client;
        ep.global = global;
        ep.delta = co_await client.create(1000 + static_cast<smb::ShmKey>(g), bytes);
        ep.bytes = bytes;
      }
      globals[static_cast<std::size_t>(n)] = global;
    }
  }(clients, endpoints, global_handles, groups, nservers, shard_bytes));
  sim.run();

  const SimTime start = sim.now();
  if (options.faults != nullptr) {
    // Link flaps: the plan's link indices map directly onto the fabric's
    // links (events beyond the fabric's link count are ignored); window
    // starts are relative to the measurement start.
    for (const fault::FaultEvent& ev : options.faults->all_link_windows()) {
      if (ev.target < 0 || static_cast<std::size_t>(ev.target) >= fabric.link_count()) {
        continue;
      }
      const double multiplier = ev.kind == fault::FaultKind::kLinkDown ? 0.0 : ev.severity;
      fabric.schedule_capacity_window(net::LinkId{static_cast<std::size_t>(ev.target)},
                                      start + units::from_seconds(ev.start_seconds),
                                      std::max<SimTime>(1, units::from_seconds(ev.duration_seconds)),
                                      multiplier);
    }
    fabric.set_dropped_transfers(options.faults->dropped_sequences());
  }

  // Replay the plan's SMB fail-stops against the replica topology (replica
  // r of shard s = physical server s * smb_replicas + r, the functional
  // trainer's layout).  An active replica's death is a failover: it pauses
  // service for the detection + promotion latency and is logged; a backup's
  // death is invisible; the last replica's death kills the shard.
  SimRecoveryContext recovery_ctx;
  recovery_ctx.readmit = options.recovery.respawn_crashed && options.group_size == 1;
  recovery_ctx.readmit_delay = units::from_seconds(options.recovery.readmit_delay_seconds);
  std::vector<std::vector<int>> failed_active(static_cast<std::size_t>(nservers));
  if (options.faults != nullptr) {
    const int replicas = options.smb_replicas;
    std::vector<fault::FaultEvent> stops;
    for (int n = 0; n < nservers * replicas; ++n) {
      for (const fault::FaultEvent& ev : options.faults->server_fail_stops(n)) {
        stops.push_back(ev);
      }
    }
    std::sort(stops.begin(), stops.end(),
              [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                return a.start_seconds != b.start_seconds ? a.start_seconds < b.start_seconds
                                                          : a.target < b.target;
              });
    std::vector<std::vector<char>> live(static_cast<std::size_t>(nservers),
                                        std::vector<char>(static_cast<std::size_t>(replicas), 1));
    std::vector<int> active(static_cast<std::size_t>(nservers), 0);
    for (const fault::FaultEvent& ev : stops) {
      const int shard = ev.target / replicas;
      const int replica = ev.target % replicas;
      if (shard < 0 || shard >= nservers) continue;
      auto& shard_live = live[static_cast<std::size_t>(shard)];
      if (!shard_live[static_cast<std::size_t>(replica)]) continue;
      shard_live[static_cast<std::size_t>(replica)] = 0;
      if (replica != active[static_cast<std::size_t>(shard)]) continue;  // backup died
      int next = -1;
      for (int r = 0; r < replicas; ++r) {
        if (shard_live[static_cast<std::size_t>(r)]) {
          next = r;
          break;
        }
      }
      const SimTime at = start + units::from_seconds(ev.start_seconds);
      if (next < 0) {
        recovery_ctx.smb_dead_at = std::min(recovery_ctx.smb_dead_at, at);
        continue;
      }
      active[static_cast<std::size_t>(shard)] = next;
      failed_active[static_cast<std::size_t>(shard)].push_back(replica);
      recovery_ctx.pauses.emplace_back(
          at, at + units::from_seconds(options.recovery.failover_seconds));
    }
  }

  std::vector<GroupStats> stats(static_cast<std::size_t>(capacity));
  std::optional<elastic::MembershipService> membership_service;
  ElasticSimState elastic_state;
  ElasticSimState* elastic = nullptr;
  if (elastic_run) {
    membership_service.emplace(groups, capacity, nservers);
    elastic_state.service = &*membership_service;
    elastic_state.plan = options.membership;
    elastic_state.policy = options.membership_policy;
    elastic_state.t_ulw = units::transfer_time(model.param_bytes, spec.gpu_update_bandwidth);
    if (options.membership != nullptr) {
      elastic_state.pending_joins = options.membership->joins();
    }
    elastic_state.spawn_join = [&sim, &options, &clients, &global_handles, &shard_sizes,
                                &recovery_ctx, &stats, &elastic_state, groups,
                                capacity](const elastic::MembershipEvent& event) {
      if (event.worker < groups || event.worker >= capacity) return;
      std::vector<smb::SimSmbClient*> cl;
      cl.reserve(clients[static_cast<std::size_t>(event.worker)].size());
      for (auto& c : clients[static_cast<std::size_t>(event.worker)]) cl.push_back(c.get());
      sim.spawn(join_worker(sim, options, std::move(cl), global_handles, shard_sizes,
                            event, capacity, recovery_ctx,
                            stats[static_cast<std::size_t>(event.worker)], elastic_state));
    };
    elastic = &elastic_state;
  }
  for (int g = 0; g < groups; ++g) {
    sim.spawn(group_worker(sim, options, endpoints[static_cast<std::size_t>(g)], g, capacity,
                           recovery_ctx, stats[static_cast<std::size_t>(g)], elastic));
  }
  // Joins planned at iteration 0 have their trigger met before anyone runs.
  if (elastic != nullptr) maybe_spawn_joins(*elastic);
  sim.run();

  cluster::PlatformTiming result;
  result.iterations = options.iterations;
  result.makespan = sim.now() - start;
  SimTime comp_sum = 0;
  SimTime comm_sum = 0;
  std::int64_t completed_member_iters = 0;
  for (const GroupStats& s : stats) {
    comp_sum += s.comp;
    comm_sum += s.comm;
    completed_member_iters +=
        s.completed * static_cast<std::int64_t>(options.group_size);
    if (s.crashed) result.crashed_workers += options.group_size;
  }
  result.completed_worker_iterations = completed_member_iters;
  const std::int64_t denom = std::max<std::int64_t>(1, completed_member_iters);
  result.mean_comp = comp_sum / denom;
  result.mean_comm = comm_sum / denom;

  for (int g = 0; g < groups; ++g) {
    if (stats[static_cast<std::size_t>(g)].recovered) {
      result.recovered_workers.push_back(g * options.group_size);
    }
  }
  for (const auto& log : failed_active) {
    result.smb_failovers += static_cast<std::int64_t>(log.size());
  }

  // Fingerprint the executed recovery actions, in planned order — the same
  // assembly the functional trainer performs, so equal fingerprints mean
  // both stacks took the identical recovery schedule from this plan.
  if (options.faults != nullptr) {
    std::vector<std::vector<int>> remaining = failed_active;
    std::vector<recovery::RecoveryEvent> executed;
    for (const recovery::RecoveryEvent& event :
         recovery::recovery_schedule(options.faults->plan(), options.recovery)) {
      if (event.action == recovery::RecoveryAction::kSmbFailover) {
        const int shard = event.target / options.smb_replicas;
        const int replica = event.target % options.smb_replicas;
        if (shard < 0 || static_cast<std::size_t>(shard) >= remaining.size()) continue;
        auto& log = remaining[static_cast<std::size_t>(shard)];
        const auto it = std::find(log.begin(), log.end(), replica);
        if (it != log.end()) {
          executed.push_back(event);
          log.erase(it);
        }
      } else if (event.action == recovery::RecoveryAction::kWorkerReadmit) {
        const int group = event.target / options.group_size;
        if (group >= 0 && group < groups && event.target % options.group_size == 0 &&
            stats[static_cast<std::size_t>(group)].recovered) {
          executed.push_back(event);
        }
      }
    }
    result.recovery_fingerprint = recovery::schedule_fingerprint(executed);
  }

  // Integrity model: derive the executed outcome from the plan, the policy,
  // and the run's own timing, then fingerprint it exactly the way the
  // functional trainer does (the planned schedule filtered by the observed
  // marker sets), so equal fingerprints mean both stacks agreed on which
  // corruptions fired, were detected, and were repaired.
  if (options.faults != nullptr) {
    const int replicas = options.smb_replicas;
    const int physical = nservers * replicas;
    // Death time of each physical replica: an injection aimed at a dead
    // server raises SmbUnavailable on the functional stack and never lands.
    std::vector<SimTime> dead_at(static_cast<std::size_t>(physical),
                                 std::numeric_limits<SimTime>::max());
    for (int n = 0; n < physical; ++n) {
      for (const fault::FaultEvent& ev : options.faults->server_fail_stops(n)) {
        dead_at[static_cast<std::size_t>(n)] =
            std::min(dead_at[static_cast<std::size_t>(n)],
                     units::from_seconds(ev.start_seconds));
      }
    }
    // Conservative per-replica float-write count: the master's initial W_g
    // shard write plus one delta write per sharing exchange per group
    // (ReplicatedSmb fans every write to every replica of the shard).  The
    // torn-write ordinal estimate is deliberately coarse — cross-stack
    // fingerprint tests use corruption-only plans (see recovery/integrity.h).
    std::int64_t writes_est = 1;
    if (capacity > 1) {
      for (const GroupStats& s : stats) {
        if (s.completed > 0) {
          writes_est += (s.completed + options.update_interval - 1) / options.update_interval;
        }
      }
    }
    const bool detectable = options.integrity.verify_on_read;
    const bool repairable = detectable && options.integrity.read_repair && replicas >= 2;
    // Detection happens at the next sharing block touching the poisoned
    // shard (every live exchange reads all of W_g), or at the final scrub
    // for corruptions landing after the last exchange.
    const SimTime sharing_interval =
        result.mean_iteration() * std::max(1, options.update_interval);
    recovery::IntegrityOutcome outcome;
    SimTime latency_sum = 0;
    std::int64_t detections = 0;
    for (int n = 0; n < physical; ++n) {
      for (const fault::FaultEvent& ev : options.faults->segment_corruptions(n)) {
        const SimTime at = units::from_seconds(ev.start_seconds);
        if (at > result.makespan) continue;                         // run already over
        if (at >= dead_at[static_cast<std::size_t>(n)]) continue;   // replica dead
        outcome.injected.push_back(ev.sequence);
        if (!detectable) continue;
        outcome.detected.push_back(ev.sequence);
        latency_sum += std::min(sharing_interval, result.makespan - at);
        detections += 1;
        if (repairable) outcome.repaired.push_back(ev.sequence);
      }
      for (const fault::FaultEvent& ev : options.faults->torn_writes(n)) {
        if (ev.sequence < 1 || static_cast<std::int64_t>(ev.sequence) > writes_est) continue;
        const std::uint64_t marker = smb::SmbServer::kTornWriteMarkerBit | ev.sequence;
        outcome.torn_applied.push_back(marker);
        if (!detectable) continue;
        outcome.detected.push_back(marker);
        latency_sum += sharing_interval;
        detections += 1;
        if (repairable) outcome.repaired.push_back(marker);
      }
    }
    result.corruptions_detected = static_cast<std::int64_t>(outcome.detected.size());
    result.integrity_repairs = static_cast<std::int64_t>(outcome.repaired.size());
    if (detections > 0) result.detection_latency = latency_sum / detections;
    // Each rewritten copy stalls the detecting reader for the modelled
    // repair cost; the charge lands on the critical path (comm side).
    result.repair_time = static_cast<SimTime>(result.integrity_repairs) *
                         units::from_seconds(options.integrity.sim_repair_seconds);
    result.makespan += result.repair_time;
    const std::int64_t denom_iters = std::max<std::int64_t>(1, completed_member_iters);
    result.mean_comm += result.repair_time / denom_iters;
    const std::vector<recovery::IntegrityEvent> planned_integrity =
        recovery::integrity_schedule(options.faults->plan(), options.integrity);
    result.integrity_fingerprint = recovery::integrity_fingerprint(
        recovery::executed_integrity(planned_integrity, outcome));
  }
  // The final scrub the functional trainer runs after training (one pass per
  // shard ensemble) — the walk exists only when there is a replica to vote
  // against.
  if (options.integrity.enabled() && options.integrity.scrub_on_checkpoint &&
      options.smb_replicas >= 2) {
    result.scrub_passes = nservers;
  }

  // Fingerprint the executed membership transitions the same way the
  // functional trainer does: the planned schedule filtered by what this run
  // actually executed (a join whose trigger was never reached, or a
  // quarantine chain cut short by a crash, drops out on both stacks).
  if (membership_service.has_value()) {
    result.joined_workers = membership_service->joined();
    result.drained_workers = membership_service->drained();
    result.rebalances = membership_service->rebalances();
    result.quarantine_events = membership_service->quarantine_events();
    result.staleness_violations = elastic_state.staleness_violations;
    const std::vector<elastic::MembershipChange> planned = elastic::membership_schedule(
        options.membership, options.faults != nullptr ? &options.faults->plan() : nullptr,
        options.membership_policy, groups);
    result.membership_fingerprint = elastic::membership_fingerprint(
        elastic::filter_executed(planned, membership_service->execution()));
  }
  return result;
}

}  // namespace shmcaffe::core
