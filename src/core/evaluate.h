// Model evaluation on a held-out dataset.
#pragma once

#include "data/synth_dataset.h"
#include "dl/net.h"

namespace shmcaffe::core {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;  ///< top-1, in [0,1]
  std::size_t samples = 0;
};

/// Runs the whole dataset through the net in eval mode (batched) and returns
/// mean loss and top-1 accuracy.  The net's "data"/"label" inputs are reused.
EvalResult evaluate(dl::Net& net, const data::SynthImageDataset& dataset,
                    int batch_size = 64);

}  // namespace shmcaffe::core
