#include "core/progress_board.h"

namespace shmcaffe::core {

namespace {
// Slot layout: [0, workers) per-worker iteration counts; slot `workers` is
// the stop flag.
}  // namespace

ProgressBoard::ProgressBoard(smb::SmbServer& server, smb::ShmKey key, int workers,
                             bool create)
    : server_(&server), workers_(workers) {
  const auto slots = static_cast<std::size_t>(workers) + 1;
  handle_ = create ? server.create_counters(key, slots) : server.attach_counters(key, slots);
}

void ProgressBoard::report(int worker, std::int64_t iterations) {
  server_->store(handle_, static_cast<std::size_t>(worker), iterations);
}

std::int64_t ProgressBoard::iterations_of(int worker) const {
  return server_->load(handle_, static_cast<std::size_t>(worker));
}

std::int64_t ProgressBoard::min_iterations() const {
  std::int64_t result = iterations_of(0);
  for (int w = 1; w < workers_; ++w) result = std::min(result, iterations_of(w));
  return result;
}

std::int64_t ProgressBoard::max_iterations() const {
  std::int64_t result = iterations_of(0);
  for (int w = 1; w < workers_; ++w) result = std::max(result, iterations_of(w));
  return result;
}

double ProgressBoard::mean_iterations() const {
  std::int64_t sum = 0;
  for (int w = 0; w < workers_; ++w) sum += iterations_of(w);
  return static_cast<double>(sum) / workers_;
}

void ProgressBoard::raise_stop() {
  server_->store(handle_, static_cast<std::size_t>(workers_), 1);
}

bool ProgressBoard::stop_raised() const {
  return server_->load(handle_, static_cast<std::size_t>(workers_)) != 0;
}

bool ProgressBoard::should_stop(TerminationCriterion criterion, int worker,
                                std::int64_t my_iterations,
                                std::int64_t target_iterations) {
  report(worker, my_iterations);
  if (stop_raised()) return true;
  switch (criterion) {
    case TerminationCriterion::kMasterFinishes:
      if (worker == 0 && my_iterations >= target_iterations) {
        raise_stop();
        return true;
      }
      return false;
    case TerminationCriterion::kFirstFinisher:
      if (my_iterations >= target_iterations) {
        raise_stop();
        return true;
      }
      return false;
    case TerminationCriterion::kAverageIterations:
      if (mean_iterations() >= static_cast<double>(target_iterations)) {
        raise_stop();
        return true;
      }
      return false;
  }
  return false;
}

void ProgressBoard::release() {
  if (server_ != nullptr && handle_.valid()) {
    server_->release(handle_);
    handle_ = smb::Handle{};
  }
}

}  // namespace shmcaffe::core
