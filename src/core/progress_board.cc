#include "core/progress_board.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace shmcaffe::core {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ProgressBoard::ProgressBoard(smb::SmbService& server, smb::ShmKey key, int workers,
                             bool create, int capacity)
    : server_(&server), capacity_(std::max(workers, capacity)) {
  if (create) {
    const auto slots = static_cast<std::size_t>(capacity_) * 6 + 1;
    handle_ = server.create_counters(key, slots);
    for (int w = 0; w < capacity_; ++w) {
      server_->store(handle_, incarnation_slot(w), kFirstIncarnation);
      if (w >= workers) {
        server_->store(handle_, state_slot(w),
                       static_cast<std::int64_t>(WorkerState::kAbsent));
      }
    }
  } else {
    // Attachers cannot know the creator's join capacity up front, so attach
    // size-agnostically and derive it from the segment that exists.
    handle_ = server.attach_counters(key, 0);
    capacity_ = static_cast<int>((server.size(handle_) - 1) / 6);
  }
}

void ProgressBoard::report(int worker, std::int64_t iterations, std::int64_t incarnation) {
  if (!incarnation_is_current(worker, incarnation)) return;  // stale life
  const std::int64_t previous = server_->load(handle_, static_cast<std::size_t>(worker));
  const std::int64_t last_stamp = server_->load(handle_, heartbeat_slot(worker));
  const std::int64_t now = steady_now_ns();
  server_->store(handle_, static_cast<std::size_t>(worker), iterations);
  server_->store(handle_, heartbeat_slot(worker), now);
  // Fold the implied instantaneous rate into the worker's EWMA slot.  The
  // first report of a life (stamp 0) and duplicate/backward reports carry
  // no rate information and leave the estimate alone.
  const double dt = static_cast<double>(now - last_stamp) / 1e9;
  if (last_stamp != 0 && iterations > previous && dt > 0.0) {
    const double instantaneous = static_cast<double>(iterations - previous) / dt;
    const double smoothed = elastic::ewma(rate_of(worker), instantaneous, kRateEwmaAlpha);
    server_->store(handle_, rate_slot(worker),
                   static_cast<std::int64_t>(smoothed * kRateFixedPoint));
  }
}

void ProgressBoard::heartbeat(int worker, std::int64_t incarnation) {
  if (!incarnation_is_current(worker, incarnation)) return;  // stale life
  server_->store(handle_, heartbeat_slot(worker), steady_now_ns());
}

std::int64_t ProgressBoard::iterations_of(int worker) const {
  return server_->load(handle_, static_cast<std::size_t>(worker));
}

std::int64_t ProgressBoard::min_iterations() const {
  std::int64_t result = std::numeric_limits<std::int64_t>::max();
  for (int w = 0; w < capacity_; ++w) {
    if (!contributing(w)) continue;
    result = std::min(result, iterations_of(w));
  }
  return result == std::numeric_limits<std::int64_t>::max() ? 0 : result;
}

std::int64_t ProgressBoard::max_iterations() const {
  std::int64_t result = std::numeric_limits<std::int64_t>::min();
  for (int w = 0; w < capacity_; ++w) {
    if (!contributing(w)) continue;
    result = std::max(result, iterations_of(w));
  }
  return result == std::numeric_limits<std::int64_t>::min() ? 0 : result;
}

double ProgressBoard::mean_iterations() const {
  std::int64_t sum = 0;
  int live = 0;
  for (int w = 0; w < capacity_; ++w) {
    if (!contributing(w)) continue;
    sum += iterations_of(w);
    ++live;
  }
  return live > 0 ? static_cast<double>(sum) / live : 0.0;
}

void ProgressBoard::mark_finished(int worker) {
  server_->store(handle_, state_slot(worker),
                 static_cast<std::int64_t>(WorkerState::kFinished));
}

void ProgressBoard::mark_dead(int worker) {
  server_->store(handle_, state_slot(worker), static_cast<std::int64_t>(WorkerState::kDead));
}

void ProgressBoard::mark_drained(int worker) {
  server_->store(handle_, state_slot(worker),
                 static_cast<std::int64_t>(WorkerState::kDrained));
}

void ProgressBoard::mark_evicted(int worker) {
  server_->store(handle_, state_slot(worker),
                 static_cast<std::int64_t>(WorkerState::kEvicted));
  // Like a death, the evicted life's progress must stop contributing and
  // its last heartbeat must not look fresh to a later sweep.
  server_->store(handle_, static_cast<std::size_t>(worker), 0);
  server_->store(handle_, heartbeat_slot(worker), 0);
}

ProgressBoard::WorkerState ProgressBoard::state_of(int worker) const {
  return static_cast<WorkerState>(server_->load(handle_, state_slot(worker)));
}

int ProgressBoard::live_count() const {
  int live = 0;
  for (int w = 0; w < capacity_; ++w) {
    if (contributing(w)) ++live;
  }
  return live;
}

std::vector<int> ProgressBoard::dead_workers() const {
  std::vector<int> dead;
  for (int w = 0; w < capacity_; ++w) {
    if (is_dead(w)) dead.push_back(w);
  }
  return dead;
}

int ProgressBoard::sweep_dead(double timeout_seconds) {
  // One sweeper at a time; a peer already scanning covers this caller too.
  std::unique_lock sweep(sweep_mutex_, std::try_to_lock);
  if (!sweep.owns_lock()) return 0;
  return sweep_dead_locked(timeout_seconds);
}

int ProgressBoard::sweep_dead_locked(double timeout_seconds)
    SHMCAFFE_REQUIRES(sweep_mutex_) {
  SHMCAFFE_ASSERT_HELD(sweep_mutex_);
  const auto timeout_ns = static_cast<std::int64_t>(timeout_seconds * 1e9);
  const std::int64_t now = steady_now_ns();
  int newly_dead = 0;
  for (int w = 0; w < capacity_; ++w) {
    // Quarantined workers still heartbeat (they keep training toward
    // readmission), so they are swept for death like alive ones.
    const WorkerState state = state_of(w);
    if (state != WorkerState::kAlive && state != WorkerState::kQuarantined) continue;
    const std::int64_t stamp = server_->load(handle_, heartbeat_slot(w));
    // stamp == 0 means the worker never reported; give it startup grace.
    if (stamp != 0 && now - stamp > timeout_ns) {
      mark_dead(w);
      // Zero the fenced life's slots under the sweep lock: a worker fenced
      // after its last exchange must not keep contributing a stale
      // iteration count once the slot is re-admitted (kAverageIterations
      // would otherwise average in progress nobody is making), and its
      // last heartbeat must not look fresh to a later sweep.
      server_->store(handle_, static_cast<std::size_t>(w), 0);
      server_->store(handle_, heartbeat_slot(w), 0);
      ++newly_dead;
    }
  }
  return newly_dead;
}

std::int64_t ProgressBoard::incarnation_of(int worker) const {
  return server_->load(handle_, incarnation_slot(worker));
}

std::int64_t ProgressBoard::fresh_life(int worker) {
  // Bump the incarnation FIRST: from this moment the previous life's
  // reports and heartbeats are stale and dropped, so the reset below
  // cannot be clobbered by a zombie thread.
  const std::int64_t incarnation =
      server_->fetch_add(handle_, incarnation_slot(worker), 1) + 1;
  server_->store(handle_, static_cast<std::size_t>(worker), 0);
  server_->store(handle_, heartbeat_slot(worker), 0);  // startup grace
  server_->store(handle_, rate_slot(worker), 0);
  server_->store(handle_, violation_slot(worker), 0);
  server_->store(handle_, state_slot(worker),
                 static_cast<std::int64_t>(WorkerState::kAlive));
  return incarnation;
}

std::int64_t ProgressBoard::readmit(int worker) { return fresh_life(worker); }

std::int64_t ProgressBoard::admit(int worker) { return fresh_life(worker); }

int ProgressBoard::acting_master() const {
  for (int w = 0; w < capacity_; ++w) {
    if (contributing(w)) return w;
  }
  return 0;
}

double ProgressBoard::rate_of(int worker) const {
  return static_cast<double>(server_->load(handle_, rate_slot(worker))) / kRateFixedPoint;
}

double ProgressBoard::mean_live_rate() const {
  double alive_sum = 0.0, fallback_sum = 0.0;
  int alive_n = 0, fallback_n = 0;
  for (int w = 0; w < capacity_; ++w) {
    const double rate = rate_of(w);
    if (rate <= 0.0) continue;
    switch (state_of(w)) {
      case WorkerState::kAlive:
        alive_sum += rate;
        ++alive_n;
        break;
      case WorkerState::kQuarantined:
      case WorkerState::kFinished:
        fallback_sum += rate;
        ++fallback_n;
        break;
      default:
        break;
    }
  }
  if (alive_n > 0) return alive_sum / alive_n;
  // All estimating workers are quarantined or done: fall back to their
  // rates so the detector can still judge readmission (a cohort-wide
  // quarantine must not freeze because nobody "alive" has an estimate).
  return fallback_n > 0 ? fallback_sum / fallback_n : 0.0;
}

std::vector<elastic::StragglerTransition> ProgressBoard::sweep_stragglers(
    const elastic::MembershipPolicy& policy) {
  std::unique_lock sweep(sweep_mutex_, std::try_to_lock);
  if (!sweep.owns_lock()) return {};
  return sweep_stragglers_locked(policy);
}

std::vector<elastic::StragglerTransition> ProgressBoard::sweep_stragglers_locked(
    const elastic::MembershipPolicy& policy) SHMCAFFE_REQUIRES(sweep_mutex_) {
  SHMCAFFE_ASSERT_HELD(sweep_mutex_);
  std::vector<elastic::StragglerTransition> transitions;
  const double mean_rate = mean_live_rate();
  if (mean_rate <= 0.0) return transitions;  // no estimate to project with yet
  const std::int64_t now = steady_now_ns();
  for (int w = 0; w < capacity_; ++w) {
    const WorkerState state = state_of(w);
    if (state != WorkerState::kAlive && state != WorkerState::kQuarantined) continue;
    const std::int64_t stamp = server_->load(handle_, heartbeat_slot(w));
    if (stamp == 0) continue;  // startup grace, like sweep_dead
    const double silence = static_cast<double>(now - stamp) / 1e9;
    if (state == WorkerState::kAlive) {
      const auto violations = static_cast<int>(server_->load(handle_, violation_slot(w)));
      switch (elastic::judge_alive(silence, mean_rate, violations, policy)) {
        case elastic::StragglerVerdict::kQuarantine:
          server_->store(handle_, violation_slot(w), violations + 1);
          server_->store(handle_, state_slot(w),
                         static_cast<std::int64_t>(WorkerState::kQuarantined));
          transitions.push_back({w, elastic::StragglerVerdict::kQuarantine});
          break;
        case elastic::StragglerVerdict::kEvict:
          server_->store(handle_, violation_slot(w), violations + 1);
          mark_evicted(w);
          transitions.push_back({w, elastic::StragglerVerdict::kEvict});
          break;
        default:
          break;
      }
    } else if (elastic::judge_quarantined(silence, mean_rate, policy) ==
               elastic::StragglerVerdict::kReadmit) {
      server_->store(handle_, state_slot(w),
                     static_cast<std::int64_t>(WorkerState::kAlive));
      transitions.push_back({w, elastic::StragglerVerdict::kReadmit});
    }
  }
  return transitions;
}

void ProgressBoard::raise_stop() {
  server_->store(handle_, stop_slot(), 1);
}

bool ProgressBoard::stop_raised() const {
  return server_->load(handle_, stop_slot()) != 0;
}

bool ProgressBoard::should_stop(TerminationCriterion criterion, int worker,
                                std::int64_t my_iterations,
                                std::int64_t target_iterations,
                                double heartbeat_timeout_seconds,
                                std::int64_t incarnation) {
  // A stale incarnation is fenced outright: the slot now belongs to a
  // re-admitted successor, so this life must exit without contributing.
  if (!incarnation_is_current(worker, incarnation)) return true;
  report(worker, my_iterations, incarnation);
  if (stop_raised()) return true;
  // Fenced: a worker the survivors declared dead or the straggler sweep
  // evicted must not keep contributing (its exchanges would re-include a
  // peer everyone else already excluded).
  const WorkerState state = state_of(worker);
  if (state == WorkerState::kDead || state == WorkerState::kEvicted) return true;
  if (heartbeat_timeout_seconds > 0.0) sweep_dead(heartbeat_timeout_seconds);
  // A quarantined worker neither stops nor decides for the cohort: it keeps
  // training toward readmission until the global flag is raised (the caller
  // handles "quarantined but reached its own target" itself).
  if (state == WorkerState::kQuarantined) return false;
  switch (criterion) {
    case TerminationCriterion::kMasterFinishes:
      // Degradation: if the master died, the lowest-indexed survivor
      // inherits the role, so the criterion still fires.
      if (worker == acting_master() && my_iterations >= target_iterations) {
        raise_stop();
        return true;
      }
      return false;
    case TerminationCriterion::kFirstFinisher:
      if (my_iterations >= target_iterations) {
        raise_stop();
        return true;
      }
      return false;
    case TerminationCriterion::kAverageIterations:
      // Dead workers are excluded from the mean: the run converges on the
      // survivors' progress instead of chasing a frozen numerator.
      if (mean_iterations() >= static_cast<double>(target_iterations)) {
        raise_stop();
        return true;
      }
      return false;
  }
  return false;
}

void ProgressBoard::release() {
  if (server_ != nullptr && handle_.valid()) {
    server_->release(handle_);
    handle_ = smb::Handle{};
  }
}

}  // namespace shmcaffe::core
