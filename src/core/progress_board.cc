#include "core/progress_board.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace shmcaffe::core {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ProgressBoard::ProgressBoard(smb::SmbService& server, smb::ShmKey key, int workers,
                             bool create)
    : server_(&server), workers_(workers) {
  const auto slots = static_cast<std::size_t>(workers) * 4 + 1;
  handle_ = create ? server.create_counters(key, slots) : server.attach_counters(key, slots);
  if (create) {
    for (int w = 0; w < workers_; ++w) {
      server_->store(handle_, incarnation_slot(w), kFirstIncarnation);
    }
  }
}

void ProgressBoard::report(int worker, std::int64_t iterations, std::int64_t incarnation) {
  if (!incarnation_is_current(worker, incarnation)) return;  // stale life
  server_->store(handle_, static_cast<std::size_t>(worker), iterations);
  heartbeat(worker, incarnation);
}

void ProgressBoard::heartbeat(int worker, std::int64_t incarnation) {
  if (!incarnation_is_current(worker, incarnation)) return;  // stale life
  server_->store(handle_, heartbeat_slot(worker), steady_now_ns());
}

std::int64_t ProgressBoard::iterations_of(int worker) const {
  return server_->load(handle_, static_cast<std::size_t>(worker));
}

std::int64_t ProgressBoard::min_iterations() const {
  std::int64_t result = std::numeric_limits<std::int64_t>::max();
  for (int w = 0; w < workers_; ++w) {
    if (is_dead(w)) continue;
    result = std::min(result, iterations_of(w));
  }
  return result == std::numeric_limits<std::int64_t>::max() ? 0 : result;
}

std::int64_t ProgressBoard::max_iterations() const {
  std::int64_t result = std::numeric_limits<std::int64_t>::min();
  for (int w = 0; w < workers_; ++w) {
    if (is_dead(w)) continue;
    result = std::max(result, iterations_of(w));
  }
  return result == std::numeric_limits<std::int64_t>::min() ? 0 : result;
}

double ProgressBoard::mean_iterations() const {
  std::int64_t sum = 0;
  int live = 0;
  for (int w = 0; w < workers_; ++w) {
    if (is_dead(w)) continue;
    sum += iterations_of(w);
    ++live;
  }
  return live > 0 ? static_cast<double>(sum) / live : 0.0;
}

void ProgressBoard::mark_finished(int worker) {
  server_->store(handle_, state_slot(worker),
                 static_cast<std::int64_t>(WorkerState::kFinished));
}

void ProgressBoard::mark_dead(int worker) {
  server_->store(handle_, state_slot(worker), static_cast<std::int64_t>(WorkerState::kDead));
}

ProgressBoard::WorkerState ProgressBoard::state_of(int worker) const {
  return static_cast<WorkerState>(server_->load(handle_, state_slot(worker)));
}

int ProgressBoard::live_count() const {
  int live = 0;
  for (int w = 0; w < workers_; ++w) {
    if (!is_dead(w)) ++live;
  }
  return live;
}

std::vector<int> ProgressBoard::dead_workers() const {
  std::vector<int> dead;
  for (int w = 0; w < workers_; ++w) {
    if (is_dead(w)) dead.push_back(w);
  }
  return dead;
}

int ProgressBoard::sweep_dead(double timeout_seconds) {
  // One sweeper at a time; a peer already scanning covers this caller too.
  std::unique_lock sweep(sweep_mutex_, std::try_to_lock);
  if (!sweep.owns_lock()) return 0;
  return sweep_dead_locked(timeout_seconds);
}

int ProgressBoard::sweep_dead_locked(double timeout_seconds) {
  SHMCAFFE_ASSERT_HELD(sweep_mutex_);
  const auto timeout_ns = static_cast<std::int64_t>(timeout_seconds * 1e9);
  const std::int64_t now = steady_now_ns();
  int newly_dead = 0;
  for (int w = 0; w < workers_; ++w) {
    if (state_of(w) != WorkerState::kAlive) continue;
    const std::int64_t stamp = server_->load(handle_, heartbeat_slot(w));
    // stamp == 0 means the worker never reported; give it startup grace.
    if (stamp != 0 && now - stamp > timeout_ns) {
      mark_dead(w);
      // Zero the fenced life's slots under the sweep lock: a worker fenced
      // after its last exchange must not keep contributing a stale
      // iteration count once the slot is re-admitted (kAverageIterations
      // would otherwise average in progress nobody is making), and its
      // last heartbeat must not look fresh to a later sweep.
      server_->store(handle_, static_cast<std::size_t>(w), 0);
      server_->store(handle_, heartbeat_slot(w), 0);
      ++newly_dead;
    }
  }
  return newly_dead;
}

std::int64_t ProgressBoard::incarnation_of(int worker) const {
  return server_->load(handle_, incarnation_slot(worker));
}

std::int64_t ProgressBoard::readmit(int worker) {
  // Bump the incarnation FIRST: from this moment the previous life's
  // reports and heartbeats are stale and dropped, so the reset below
  // cannot be clobbered by a zombie thread.
  const std::int64_t incarnation =
      server_->fetch_add(handle_, incarnation_slot(worker), 1) + 1;
  server_->store(handle_, static_cast<std::size_t>(worker), 0);
  server_->store(handle_, heartbeat_slot(worker), 0);  // startup grace
  server_->store(handle_, state_slot(worker),
                 static_cast<std::int64_t>(WorkerState::kAlive));
  return incarnation;
}

int ProgressBoard::acting_master() const {
  for (int w = 0; w < workers_; ++w) {
    if (!is_dead(w)) return w;
  }
  return 0;
}

void ProgressBoard::raise_stop() {
  server_->store(handle_, stop_slot(), 1);
}

bool ProgressBoard::stop_raised() const {
  return server_->load(handle_, stop_slot()) != 0;
}

bool ProgressBoard::should_stop(TerminationCriterion criterion, int worker,
                                std::int64_t my_iterations,
                                std::int64_t target_iterations,
                                double heartbeat_timeout_seconds,
                                std::int64_t incarnation) {
  // A stale incarnation is fenced outright: the slot now belongs to a
  // re-admitted successor, so this life must exit without contributing.
  if (!incarnation_is_current(worker, incarnation)) return true;
  report(worker, my_iterations, incarnation);
  if (stop_raised()) return true;
  // Fenced: a worker the survivors declared dead must not keep contributing
  // (its exchanges would re-include a peer everyone else already excluded).
  if (is_dead(worker)) return true;
  if (heartbeat_timeout_seconds > 0.0) sweep_dead(heartbeat_timeout_seconds);
  switch (criterion) {
    case TerminationCriterion::kMasterFinishes:
      // Degradation: if the master died, the lowest-indexed survivor
      // inherits the role, so the criterion still fires.
      if (worker == acting_master() && my_iterations >= target_iterations) {
        raise_stop();
        return true;
      }
      return false;
    case TerminationCriterion::kFirstFinisher:
      if (my_iterations >= target_iterations) {
        raise_stop();
        return true;
      }
      return false;
    case TerminationCriterion::kAverageIterations:
      // Dead workers are excluded from the mean: the run converges on the
      // survivors' progress instead of chasing a frozen numerator.
      if (mean_iterations() >= static_cast<double>(target_iterations)) {
        raise_stop();
        return true;
      }
      return false;
  }
  return false;
}

void ProgressBoard::release() {
  if (server_ != nullptr && handle_.valid()) {
    server_->release(handle_);
    handle_ = smb::Handle{};
  }
}

}  // namespace shmcaffe::core
