// Shared training-progress board over SMB counters (§III-E).
//
// BVLC Caffe stops after a fixed iteration count, so asynchronous workers
// with computation-speed deviations finish at different times while still
// occupying their GPUs.  ShmCaffe publishes every worker's completed
// iteration count in an SMB counter segment; workers consult it each
// iteration and align their termination by one of three criteria:
//   1. everyone stops when the master worker reaches its target,
//   2. everyone stops as soon as the first worker reaches its target,
//   3. everyone stops when the average iteration count reaches the target.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "smb/server.h"

namespace shmcaffe::core {

class ProgressBoard {
 public:
  /// Master constructs with create=true; slaves attach with create=false.
  ProgressBoard(smb::SmbServer& server, smb::ShmKey key, int workers, bool create);

  /// Publishes `iterations` completed by `worker`.
  void report(int worker, std::int64_t iterations);

  [[nodiscard]] std::int64_t iterations_of(int worker) const;
  [[nodiscard]] std::int64_t min_iterations() const;
  [[nodiscard]] std::int64_t max_iterations() const;
  [[nodiscard]] double mean_iterations() const;

  /// Raises the global stop flag (idempotent).
  void raise_stop();
  [[nodiscard]] bool stop_raised() const;

  /// Evaluates the termination rule for `worker` having completed
  /// `my_iterations` of `target_iterations`; raises the stop flag when the
  /// rule fires.  Returns true if the worker should stop now.
  bool should_stop(TerminationCriterion criterion, int worker, std::int64_t my_iterations,
                   std::int64_t target_iterations);

  void release();

 private:
  smb::SmbServer* server_;
  smb::Handle handle_;
  int workers_;
};

}  // namespace shmcaffe::core
