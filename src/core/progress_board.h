// Shared training-progress board over SMB counters (§III-E).
//
// BVLC Caffe stops after a fixed iteration count, so asynchronous workers
// with computation-speed deviations finish at different times while still
// occupying their GPUs.  ShmCaffe publishes every worker's completed
// iteration count in an SMB counter segment; workers consult it each
// iteration and align their termination by one of three criteria:
//   1. everyone stops when the master worker reaches its target,
//   2. everyone stops as soon as the first worker reaches its target,
//   3. everyone stops when the average iteration count reaches the target.
//
// Fault tolerance: every worker additionally owns a heartbeat slot it
// stamps on each report.  Survivors sweep the board; a worker whose
// heartbeat is older than the timeout is declared dead and excluded from
// the min/mean reductions and the termination criteria (with the master
// role falling back to the lowest-indexed live worker), so a fail-stopped
// worker costs only its own contribution instead of hanging the run.  A
// declared-dead worker that wakes up again (a stall that outlived the
// timeout) finds itself fenced and must exit — dead is final *for that
// life*.  Re-admission (the recovery layer) gives the worker slot a fresh
// life under a new incarnation number: readmit() flips the slot back to
// alive and bumps the incarnation, and every report/heartbeat carries the
// caller's incarnation so writes from the previous life are ignored (stale
// heartbeats cannot resurrect a fenced worker, stale reports cannot corrupt
// the counters the termination criteria read).
//
// Elastic membership (the elastic layer): the board is created with a
// *capacity* that may exceed the initial worker count.  Slots beyond the
// initial workers start kAbsent (excluded from every reduction) and are
// claimed by cold joins through admit(), which — like readmit() — hands the
// new life a fresh incarnation; a join therefore never reuses a dead
// rank's slot.  Voluntary leavers are marked kDrained, stragglers are
// demoted to kQuarantined (still training, no longer contributing to
// reductions or termination) and promoted back by sweep_stragglers(), and
// repeated offenders end kEvicted.  Each report also folds the worker's
// instantaneous iteration rate into a per-worker EWMA slot; the straggler
// sweep projects a silent worker's staleness as heartbeat-silence x
// mean-live-rate (see elastic/straggler.h for why raw staleness cannot
// work under skew pacing).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ordered_mutex.h"
#include "core/config.h"
#include "elastic/straggler.h"
#include "smb/service.h"

namespace shmcaffe::core {

class ProgressBoard {
 public:
  /// Liveness/participation state of a worker slot, stored on the board.
  enum class WorkerState : std::int64_t {
    kAlive = 0,
    kFinished = 1,     ///< completed training normally
    kDead = 2,         ///< declared dead (missed heartbeats) — final
    kAbsent = 3,       ///< capacity slot nobody has joined yet
    kDrained = 4,      ///< left the run voluntarily (elastic drain)
    kQuarantined = 5,  ///< straggler: training but not contributing
    kEvicted = 6,      ///< removed after repeated staleness violations — final
  };

  /// Incarnation of every worker's first life.  0 is the "unfenced"
  /// sentinel legacy callers pass, so real incarnations start at 1.
  static constexpr std::int64_t kFirstIncarnation = 1;

  /// EWMA smoothing of the per-worker iteration-rate slots (one report =
  /// one sample); fixed for every board so the two stacks agree.
  static constexpr double kRateEwmaAlpha = 0.25;

  /// Master constructs with create=true; slaves attach with create=false.
  /// `capacity` (create only; 0 = `workers`) reserves slots beyond the
  /// initial worker count for cold joins — they start kAbsent.  Attach
  /// derives the capacity from the existing segment.
  ProgressBoard(smb::SmbService& server, smb::ShmKey key, int workers, bool create,
                int capacity = 0);

  /// Publishes `iterations` completed by `worker` (also stamps its
  /// heartbeat and folds the implied iteration rate into the worker's rate
  /// EWMA).  A nonzero `incarnation` that is no longer the worker's
  /// current one marks a stale life: the report is dropped.
  void report(int worker, std::int64_t iterations, std::int64_t incarnation = 0);

  /// Stamps `worker`'s heartbeat without changing its iteration count (for
  /// long waits — pacing loops, collectives — between reports).  Stale
  /// incarnations are dropped like stale reports.
  void heartbeat(int worker, std::int64_t incarnation = 0);

  [[nodiscard]] std::int64_t iterations_of(int worker) const;
  /// Reductions over *contributing* workers (alive or finished): dead,
  /// absent, drained, quarantined, and evicted slots are excluded.
  [[nodiscard]] std::int64_t min_iterations() const;
  [[nodiscard]] std::int64_t max_iterations() const;
  [[nodiscard]] double mean_iterations() const;

  // --- liveness ----------------------------------------------------------

  void mark_finished(int worker);
  void mark_dead(int worker);
  [[nodiscard]] WorkerState state_of(int worker) const;
  [[nodiscard]] bool is_dead(int worker) const {
    return state_of(worker) == WorkerState::kDead;
  }
  /// Contributing workers (alive or finished).
  [[nodiscard]] int live_count() const;
  [[nodiscard]] std::vector<int> dead_workers() const;
  /// Total slots (initial workers + join capacity).
  [[nodiscard]] int capacity() const { return capacity_; }

  /// Declares every alive worker whose heartbeat is older than
  /// `timeout_seconds` dead; returns how many were newly declared.  Sweeps
  /// are serialised: if another thread is already scanning, returns 0
  /// immediately (that sweep covers this caller too).
  int sweep_dead(double timeout_seconds);

  /// The master role for kMasterFinishes: the lowest-indexed contributing
  /// worker (0 while the real master lives).
  [[nodiscard]] int acting_master() const;

  // --- re-admission (recovery layer) -------------------------------------

  /// Current incarnation of `worker`'s board slot (starts at
  /// kFirstIncarnation; bumped by every readmit()).
  [[nodiscard]] std::int64_t incarnation_of(int worker) const;

  /// True if `incarnation` is still `worker`'s live incarnation.  0 (the
  /// legacy sentinel) is always considered current.
  [[nodiscard]] bool incarnation_is_current(int worker, std::int64_t incarnation) const {
    return incarnation == 0 || incarnation == incarnation_of(worker);
  }

  /// Re-admits a dead worker slot: bumps the incarnation (fencing the
  /// previous life's heartbeats and reports), resets the slot to alive with
  /// zero iterations and startup heartbeat grace, and returns the new
  /// incarnation the re-admitted worker must stamp everything with.
  std::int64_t readmit(int worker);

  // --- elastic membership -------------------------------------------------

  /// Claims a kAbsent capacity slot for a cold join: same slot reset as
  /// readmit() under a freshly bumped incarnation, which the joiner must
  /// stamp everything with.
  std::int64_t admit(int worker);

  /// Marks a voluntary leaver; it stops contributing to every reduction.
  void mark_drained(int worker);
  /// Marks a straggler evicted (final, like kDead).
  void mark_evicted(int worker);

  /// Per-worker iteration rate (EWMA over reports), iterations/second.
  [[nodiscard]] double rate_of(int worker) const;
  /// Mean rate over alive workers with an estimate; falls back to the
  /// quarantined/finished workers' rates when no alive worker has one.
  [[nodiscard]] double mean_live_rate() const;

  /// The straggler detector: quarantines every alive worker whose
  /// projected staleness (heartbeat silence x mean live rate) exceeds the
  /// policy bound — or evicts it on its policy.evict_after_violations-th
  /// violation — and readmits every quarantined worker whose projection
  /// collapsed back under the readmit bound.  Serialised like sweep_dead
  /// (concurrent callers skip).  Returns the transitions applied so the
  /// trainer can mirror them into the MembershipService.
  std::vector<elastic::StragglerTransition> sweep_stragglers(
      const elastic::MembershipPolicy& policy);

  /// Raises the global stop flag (idempotent).
  void raise_stop();
  [[nodiscard]] bool stop_raised() const;

  /// Evaluates the termination rule for `worker` having completed
  /// `my_iterations` of `target_iterations`; raises the stop flag when the
  /// rule fires.  Returns true if the worker should stop now.  A positive
  /// `heartbeat_timeout_seconds` additionally sweeps for dead peers; a
  /// worker that was itself declared dead or evicted is told to stop
  /// (fenced).  A quarantined worker neither stops nor decides for the
  /// cohort: it keeps training toward readmission until the stop flag is
  /// raised.
  bool should_stop(TerminationCriterion criterion, int worker, std::int64_t my_iterations,
                   std::int64_t target_iterations, double heartbeat_timeout_seconds = 0.0,
                   std::int64_t incarnation = 0);

  void release();

 private:
  // Slot layout over capacity c: [0, c) iteration counts; c the stop flag;
  // [c+1, 2c+1) heartbeat stamps (steady-clock ns); [2c+1, 3c+1)
  // WorkerState values; [3c+1, 4c+1) incarnation numbers; [4c+1, 5c+1)
  // iteration-rate EWMAs (fixed-point, kRateFixedPoint units per
  // iteration/second); [5c+1, 6c+1) straggler violation counts.
  static constexpr double kRateFixedPoint = 1e6;
  [[nodiscard]] std::size_t stop_slot() const { return static_cast<std::size_t>(capacity_); }
  [[nodiscard]] std::size_t heartbeat_slot(int worker) const {
    return static_cast<std::size_t>(capacity_ + 1 + worker);
  }
  [[nodiscard]] std::size_t state_slot(int worker) const {
    return static_cast<std::size_t>(2 * capacity_ + 1 + worker);
  }
  [[nodiscard]] std::size_t incarnation_slot(int worker) const {
    return static_cast<std::size_t>(3 * capacity_ + 1 + worker);
  }
  [[nodiscard]] std::size_t rate_slot(int worker) const {
    return static_cast<std::size_t>(4 * capacity_ + 1 + worker);
  }
  [[nodiscard]] std::size_t violation_slot(int worker) const {
    return static_cast<std::size_t>(5 * capacity_ + 1 + worker);
  }

  /// True for states included in the min/mean/master reductions.
  [[nodiscard]] bool contributing(int worker) const {
    const WorkerState state = state_of(worker);
    return state == WorkerState::kAlive || state == WorkerState::kFinished;
  }

  /// Resets a slot for a fresh life under a bumped incarnation (the shared
  /// body of readmit() and admit()).
  std::int64_t fresh_life(int worker);

  /// The scan body of sweep_dead(); requires sweep_mutex_ held.
  int sweep_dead_locked(double timeout_seconds) SHMCAFFE_REQUIRES(sweep_mutex_);
  /// The scan body of sweep_stragglers(); requires sweep_mutex_ held.
  std::vector<elastic::StragglerTransition> sweep_stragglers_locked(
      const elastic::MembershipPolicy& policy) SHMCAFFE_REQUIRES(sweep_mutex_);

  // server_/capacity_ are set once in the ctor; handle_ is only reset by
  // release() (caller-serialised teardown), so none are sweep-guarded.
  smb::SmbService* server_ SHMCAFFE_UNGUARDED;
  smb::Handle handle_ SHMCAFFE_UNGUARDED;
  int capacity_ SHMCAFFE_UNGUARDED;
  /// Serialises dead-worker and straggler sweeps: every worker calls
  /// should_stop() each iteration, and one sweep at a time is enough —
  /// concurrent callers try-lock and skip instead of queueing behind the
  /// scan.  Held across SMB counter reads/writes, hence ranked below
  /// smb.server.table.
  common::OrderedMutex sweep_mutex_{"core.progress_board.sweep",
                                    common::lockrank::kProgressBoardSweep};
};

}  // namespace shmcaffe::core
