// Shared training-progress board over SMB counters (§III-E).
//
// BVLC Caffe stops after a fixed iteration count, so asynchronous workers
// with computation-speed deviations finish at different times while still
// occupying their GPUs.  ShmCaffe publishes every worker's completed
// iteration count in an SMB counter segment; workers consult it each
// iteration and align their termination by one of three criteria:
//   1. everyone stops when the master worker reaches its target,
//   2. everyone stops as soon as the first worker reaches its target,
//   3. everyone stops when the average iteration count reaches the target.
//
// Fault tolerance: every worker additionally owns a heartbeat slot it
// stamps on each report.  Survivors sweep the board; a worker whose
// heartbeat is older than the timeout is declared dead and excluded from
// the min/mean reductions and the termination criteria (with the master
// role falling back to the lowest-indexed live worker), so a fail-stopped
// worker costs only its own contribution instead of hanging the run.  A
// declared-dead worker that wakes up again (a stall that outlived the
// timeout) finds itself fenced and must exit — dead is final.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ordered_mutex.h"
#include "core/config.h"
#include "smb/server.h"

namespace shmcaffe::core {

class ProgressBoard {
 public:
  /// Liveness state of a worker, stored on the shared board.
  enum class WorkerState : std::int64_t {
    kAlive = 0,
    kFinished = 1,  ///< completed training normally
    kDead = 2,      ///< declared dead (missed heartbeats) — final
  };

  /// Master constructs with create=true; slaves attach with create=false.
  ProgressBoard(smb::SmbServer& server, smb::ShmKey key, int workers, bool create);

  /// Publishes `iterations` completed by `worker` (also stamps its heartbeat).
  void report(int worker, std::int64_t iterations);

  /// Stamps `worker`'s heartbeat without changing its iteration count (for
  /// long waits — pacing loops, collectives — between reports).
  void heartbeat(int worker);

  [[nodiscard]] std::int64_t iterations_of(int worker) const;
  /// Reductions over workers not declared dead (all workers while healthy).
  [[nodiscard]] std::int64_t min_iterations() const;
  [[nodiscard]] std::int64_t max_iterations() const;
  [[nodiscard]] double mean_iterations() const;

  // --- liveness ----------------------------------------------------------

  void mark_finished(int worker);
  void mark_dead(int worker);
  [[nodiscard]] WorkerState state_of(int worker) const;
  [[nodiscard]] bool is_dead(int worker) const {
    return state_of(worker) == WorkerState::kDead;
  }
  /// Workers not declared dead (alive or finished).
  [[nodiscard]] int live_count() const;
  [[nodiscard]] std::vector<int> dead_workers() const;

  /// Declares every alive worker whose heartbeat is older than
  /// `timeout_seconds` dead; returns how many were newly declared.  Sweeps
  /// are serialised: if another thread is already scanning, returns 0
  /// immediately (that sweep covers this caller too).
  int sweep_dead(double timeout_seconds);

  /// The master role for kMasterFinishes: the lowest-indexed non-dead
  /// worker (0 while the real master lives).
  [[nodiscard]] int acting_master() const;

  /// Raises the global stop flag (idempotent).
  void raise_stop();
  [[nodiscard]] bool stop_raised() const;

  /// Evaluates the termination rule for `worker` having completed
  /// `my_iterations` of `target_iterations`; raises the stop flag when the
  /// rule fires.  Returns true if the worker should stop now.  A positive
  /// `heartbeat_timeout_seconds` additionally sweeps for dead peers; a
  /// worker that was itself declared dead is told to stop (fenced).
  bool should_stop(TerminationCriterion criterion, int worker, std::int64_t my_iterations,
                   std::int64_t target_iterations, double heartbeat_timeout_seconds = 0.0);

  void release();

 private:
  // Slot layout: [0, w) iteration counts; w the stop flag; [w+1, 2w+1)
  // heartbeat stamps (steady-clock ns); [2w+1, 3w+1) WorkerState values.
  [[nodiscard]] std::size_t stop_slot() const { return static_cast<std::size_t>(workers_); }
  [[nodiscard]] std::size_t heartbeat_slot(int worker) const {
    return static_cast<std::size_t>(workers_ + 1 + worker);
  }
  [[nodiscard]] std::size_t state_slot(int worker) const {
    return static_cast<std::size_t>(2 * workers_ + 1 + worker);
  }

  smb::SmbServer* server_;
  smb::Handle handle_;
  int workers_;
  /// Serialises dead-worker sweeps: every worker calls should_stop() each
  /// iteration, and one sweep at a time is enough — concurrent callers
  /// try-lock and skip instead of queueing behind the scan.  Held across
  /// SMB counter reads/writes, hence ranked below smb.server.table.
  common::OrderedMutex sweep_mutex_{"core.progress_board.sweep",
                                    common::lockrank::kProgressBoardSweep};
};

}  // namespace shmcaffe::core
