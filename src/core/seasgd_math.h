// SEASGD update algebra — equations (2)–(7) of the paper.
//
// Local solver step (eq. 2) is the ordinary SGD update and lives in
// dl::SgdSolver.  The elastic-averaging exchange is:
//
//   dW_x  = alpha * (W'_x - W_g)      (5)  weight increment
//   W''_x = W'_x - dW_x               (6)  local weight update
//   W'_g  = W_g + dW_x                (7)  global accumulate (SMB side)
//
// These helpers operate on flat float spans (the SMB segment layout) and are
// shared by the functional trainers; (7) is performed by the SMB server's
// accumulate operation.
#pragma once

#include <cassert>
#include <span>

namespace shmcaffe::core {

/// Computes the weight increment dW = alpha * (local - global)   (eq. 5).
inline void weight_increment(std::span<const float> local, std::span<const float> global,
                             float alpha, std::span<float> delta) {
  assert(local.size() == global.size() && local.size() == delta.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    delta[i] = alpha * (local[i] - global[i]);
  }
}

/// Applies the local update  W'' = W' - dW   (eq. 6).
inline void apply_increment_locally(std::span<float> local, std::span<const float> delta) {
  assert(local.size() == delta.size());
  for (std::size_t i = 0; i < local.size(); ++i) local[i] -= delta[i];
}

/// Fused (5)+(6): computes delta and updates local in one pass.
inline void elastic_exchange(std::span<float> local, std::span<const float> global,
                             float alpha, std::span<float> delta) {
  assert(local.size() == global.size() && local.size() == delta.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    const float d = alpha * (local[i] - global[i]);
    delta[i] = d;
    local[i] -= d;
  }
}

}  // namespace shmcaffe::core
