// SEASGD update algebra — equations (2)–(7) of the paper.
//
// Local solver step (eq. 2) is the ordinary SGD update and lives in
// dl::SgdSolver.  The elastic-averaging exchange is:
//
//   dW_x  = alpha * (W'_x - W_g)      (5)  weight increment
//   W''_x = W'_x - dW_x               (6)  local weight update
//   W'_g  = W_g + dW_x                (7)  global accumulate (SMB side)
//
// These helpers operate on flat float spans (the SMB segment layout) and are
// shared by the functional trainers; (7) is performed by the SMB server's
// accumulate operation.
//
// Each kernel comes in a scalar form and a `_parallel` form that runs the
// same loop in fixed-size chunks on the shared work pool.  Every element is
// written by exactly one chunk and no chunk reads another chunk's output, so
// the parallel forms are bitwise identical to the scalar ones for any pool
// width (see common/parallel.h).  The element loops themselves are the
// common/simd.h cores — lane-independent elementwise algebra with multiply
// and add kept separate, so the SIMD and scalar-fallback builds are also
// bitwise identical (tests/simd_test.cc).
#pragma once

#include <cassert>
#include <span>

#include "common/parallel.h"
#include "common/simd.h"

namespace shmcaffe::core {

/// Elements of a model span handed to one pool chunk by the `_parallel`
/// SEASGD kernels.  64 KiB of floats — large enough that per-chunk dispatch
/// overhead is negligible, small enough that ShmCaffe-B/C models still
/// spread across every executor.
inline constexpr std::size_t kSeasgdGrain = 16384;

/// Computes the weight increment dW = alpha * (local - global)   (eq. 5).
SHMCAFFE_HOT_KERNEL inline void weight_increment(std::span<const float> local, std::span<const float> global,
                             float alpha, std::span<float> delta) {
  assert(local.size() == global.size() && local.size() == delta.size());
  common::simd::weight_increment_core(local.size(), local.data(), global.data(), alpha,
                                      delta.data());
}

/// Applies the local update  W'' = W' - dW   (eq. 6).
SHMCAFFE_HOT_KERNEL inline void apply_increment_locally(std::span<float> local, std::span<const float> delta) {
  assert(local.size() == delta.size());
  common::simd::sub_inplace(local.size(), local.data(), delta.data());
}

/// Fused (5)+(6): computes delta and updates local in one pass.
SHMCAFFE_HOT_KERNEL inline void elastic_exchange(std::span<float> local, std::span<const float> global,
                             float alpha, std::span<float> delta) {
  assert(local.size() == global.size() && local.size() == delta.size());
  common::simd::elastic_exchange_core(local.size(), local.data(), global.data(), alpha,
                                      delta.data());
}

/// Chunked (5): bitwise identical to weight_increment for any pool width.
SHMCAFFE_HOT_KERNEL inline void weight_increment_parallel(std::span<const float> local,
                                      std::span<const float> global, float alpha,
                                      std::span<float> delta) {
  assert(local.size() == global.size() && local.size() == delta.size());
  common::parallel::parallel_for(
      local.size(), kSeasgdGrain, [&](std::size_t begin, std::size_t end) {
        common::simd::weight_increment_core(end - begin, local.data() + begin,
                                            global.data() + begin, alpha,
                                            delta.data() + begin);
      });
}

/// Chunked (6): bitwise identical to apply_increment_locally.
SHMCAFFE_HOT_KERNEL inline void apply_increment_locally_parallel(std::span<float> local,
                                             std::span<const float> delta) {
  assert(local.size() == delta.size());
  common::parallel::parallel_for(
      local.size(), kSeasgdGrain, [&](std::size_t begin, std::size_t end) {
        common::simd::sub_inplace(end - begin, local.data() + begin, delta.data() + begin);
      });
}

/// Chunked fused (5)+(6): bitwise identical to elastic_exchange.
SHMCAFFE_HOT_KERNEL inline void elastic_exchange_parallel(std::span<float> local, std::span<const float> global,
                                      float alpha, std::span<float> delta) {
  assert(local.size() == global.size() && local.size() == delta.size());
  common::parallel::parallel_for(
      local.size(), kSeasgdGrain, [&](std::size_t begin, std::size_t end) {
        common::simd::elastic_exchange_core(end - begin, local.data() + begin,
                                            global.data() + begin, alpha,
                                            delta.data() + begin);
      });
}

}  // namespace shmcaffe::core
