#include "core/sharded_buffer.h"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace shmcaffe::core {

ShardedBuffer::ShardedBuffer(ShardedBuffer&& other) noexcept {
  std::scoped_lock lock(other.shards_mutex_);
  shards_ = std::move(other.shards_);
  total_ = other.total_;
  other.shards_.clear();
  other.total_ = 0;
}

ShardedBuffer& ShardedBuffer::operator=(ShardedBuffer&& other) noexcept {
  if (this == &other) return *this;
  // Same-rank pair: scoped_lock's try-lock protocol is deadlock-free and
  // exempt from the rank check (see ordered_mutex.h).
  std::scoped_lock lock(shards_mutex_, other.shards_mutex_);
  shards_ = std::move(other.shards_);
  total_ = other.total_;
  other.shards_.clear();
  other.total_ = 0;
  return *this;
}

std::size_t ShardedBuffer::size() const {
  std::scoped_lock lock(shards_mutex_);
  return total_;
}

std::size_t ShardedBuffer::shard_count() const {
  std::scoped_lock lock(shards_mutex_);
  return shards_.size();
}

bool ShardedBuffer::valid() const {
  std::scoped_lock lock(shards_mutex_);
  return !shards_.empty();
}

ShardedBuffer ShardedBuffer::build(std::span<smb::SmbService* const> servers, smb::ShmKey key,
                                   std::size_t total, bool create) {
  if (servers.empty()) throw std::invalid_argument("ShardedBuffer: no servers");
  if (total == 0) throw std::invalid_argument("ShardedBuffer: empty buffer");
  if (total < servers.size()) {
    throw std::invalid_argument("ShardedBuffer: fewer elements than servers");
  }
  ShardedBuffer buffer;
  std::unique_lock lock(buffer.shards_mutex_);
  buffer.total_ = total;
  const std::size_t base = total / servers.size();
  const std::size_t extra = total % servers.size();
  std::size_t offset = 0;
  try {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      Shard shard;
      shard.server = servers[i];
      shard.offset = offset;
      shard.count = base + (i < extra ? 1 : 0);
      shard.handle = create ? servers[i]->create_floats(key, shard.count)
                            : servers[i]->attach_floats(key, shard.count);
      offset += shard.count;
      buffer.shards_.push_back(shard);
    }
  } catch (...) {
    // Exception safety: a partial create/attach (e.g. attaching while the
    // creator is still setting up later shards) must not leak references.
    buffer.release_locked();
    throw;
  }
  lock.unlock();
  return buffer;
}

namespace {
std::vector<smb::SmbService*> upcast(std::span<smb::SmbServer* const> servers) {
  return {servers.begin(), servers.end()};
}
}  // namespace

ShardedBuffer ShardedBuffer::create(std::span<smb::SmbService* const> servers,
                                    smb::ShmKey key, std::size_t total) {
  return build(servers, key, total, /*create=*/true);
}

ShardedBuffer ShardedBuffer::create(std::span<smb::SmbServer* const> servers,
                                    smb::ShmKey key, std::size_t total) {
  return build(upcast(servers), key, total, /*create=*/true);
}

ShardedBuffer ShardedBuffer::attach(std::span<smb::SmbService* const> servers,
                                    smb::ShmKey key, std::size_t total) {
  return build(servers, key, total, /*create=*/false);
}

ShardedBuffer ShardedBuffer::attach(std::span<smb::SmbServer* const> servers,
                                    smb::ShmKey key, std::size_t total) {
  return build(upcast(servers), key, total, /*create=*/false);
}

void ShardedBuffer::read(std::span<float> dst, std::size_t start_shard) const {
  std::scoped_lock lock(shards_mutex_);
  read_locked(dst, start_shard);
}

void ShardedBuffer::read_locked(std::span<float> dst, std::size_t start_shard) const
    SHMCAFFE_REQUIRES(shards_mutex_) {
  SHMCAFFE_ASSERT_HELD(shards_mutex_);
  if (dst.size() != total_) throw std::invalid_argument("ShardedBuffer::read size mismatch");
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = shards_[(start_shard + k) % shards_.size()];
    // The fan-out must see one consistent shard table: dropping shards_mutex_
    // between per-shard reads would let a concurrent elastic re-target tear
    // the logical buffer mid-read.
    // lint:allow-next-line(no-blocking-under-lock)
    shard.server->read(shard.handle, dst.subspan(shard.offset, shard.count), 0);
  }
}

SHMCAFFE_PIN_ESCAPE std::vector<ShardedBuffer::PinnedShard> ShardedBuffer::read_pinned(
    std::size_t start_shard) const {
  std::scoped_lock lock(shards_mutex_);
  std::vector<PinnedShard> views(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::size_t index = (start_shard + k) % shards_.size();
    const Shard& shard = shards_[index];
    // Pinning under shards_mutex_ is the documented exception to pin-then-
    // lock: each pin targets a *different* server's segment mutex (never the
    // one shards_mutex_ orders above), and the table must stay stable so the
    // views cover the logical buffer without a seam.
    views[index] =  // lint:allow-next-line(no-blocking-under-lock,pin-lifetime)
        PinnedShard{shard.offset, shard.server->read_pinned(shard.handle, shard.count, 0)};
  }
  return views;
}

void ShardedBuffer::write(std::span<const float> src, std::size_t start_shard) {
  std::scoped_lock lock(shards_mutex_);
  write_locked(src, start_shard);
}

void ShardedBuffer::write_locked(std::span<const float> src, std::size_t start_shard)
    SHMCAFFE_REQUIRES(shards_mutex_) {
  SHMCAFFE_ASSERT_HELD(shards_mutex_);
  if (src.size() != total_) throw std::invalid_argument("ShardedBuffer::write size mismatch");
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = shards_[(start_shard + k) % shards_.size()];
    // Same stability argument as read_locked: the write must land on the
    // shard layout it validated against.
    // lint:allow-next-line(no-blocking-under-lock)
    shard.server->write(shard.handle, src.subspan(shard.offset, shard.count), 0);
  }
}

void ShardedBuffer::accumulate_into(ShardedBuffer& dst, std::size_t start_shard) const {
  if (&dst == this) {
    throw std::invalid_argument("ShardedBuffer::accumulate_into into itself");
  }
  // Same-rank pair via scoped_lock's try-lock protocol (rank-check exempt).
  std::scoped_lock lock(shards_mutex_, dst.shards_mutex_);
  if (dst.total_ != total_ || dst.shards_.size() != shards_.size()) {
    throw std::invalid_argument("ShardedBuffer::accumulate_into sharding mismatch");
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::size_t i = (start_shard + k) % shards_.size();
    if (shards_[i].server != dst.shards_[i].server ||
        shards_[i].count != dst.shards_[i].count) {
      throw std::invalid_argument("ShardedBuffer::accumulate_into sharding mismatch");
    }
    // Both shard tables are held for the whole fan-out so the pairwise
    // shard match checked above cannot be invalidated mid-accumulate.
    // lint:allow-next-line(no-blocking-under-lock)
    shards_[i].server->accumulate(shards_[i].handle, dst.shards_[i].handle);
  }
}

void ShardedBuffer::release() {
  std::scoped_lock lock(shards_mutex_);
  release_locked();
}

void ShardedBuffer::release_locked() SHMCAFFE_REQUIRES(shards_mutex_) {
  SHMCAFFE_ASSERT_HELD(shards_mutex_);
  for (Shard& shard : shards_) shard.server->release(shard.handle);
  shards_.clear();
  total_ = 0;
}

}  // namespace shmcaffe::core
