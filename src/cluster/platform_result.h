// Common result type of the timed platform models.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace shmcaffe::cluster {

/// Per-iteration timing breakdown averaged over workers and iterations.
/// `comm` is the non-hidden communication time — everything in an iteration
/// that is not the worker's own minibatch computation (transfer time,
/// blocked-on-lock time, and synchronous waiting for peers), exactly how the
/// paper measures "communication time ... not overlapped with the
/// computation time" (§IV-E).
struct PlatformTiming {
  SimTime mean_comp = 0;
  SimTime mean_comm = 0;
  [[nodiscard]] SimTime mean_iteration() const { return mean_comp + mean_comm; }
  /// Fraction of the iteration spent communicating.
  [[nodiscard]] double comm_ratio() const {
    const SimTime iter = mean_iteration();
    return iter > 0 ? static_cast<double>(mean_comm) / static_cast<double>(iter) : 0.0;
  }
  SimTime makespan = 0;          ///< whole simulated run
  std::int64_t iterations = 0;   ///< per worker (the configured target)
  /// Sum over workers of iterations actually completed — equals
  /// workers * iterations unless fault injection crashed somebody.
  std::int64_t completed_worker_iterations = 0;
  /// Workers removed mid-run by an injected fail-stop crash.
  int crashed_workers = 0;
  /// Worker slots re-admitted mid-run by the recovery layer, ascending (a
  /// worker can be both crashed and recovered: first life died, the slot
  /// finished under a replacement).
  std::vector<int> recovered_workers;
  /// SMB primary failovers the model executed.
  std::int64_t smb_failovers = 0;
  /// Fingerprint of the recovery actions actually executed (see
  /// recovery::schedule_fingerprint); comparable with TrainResult's.
  std::uint64_t recovery_fingerprint = 0;
  /// Elastic membership: workers that cold-joined / voluntarily drained
  /// mid-run, ascending; shard-map rebalances executed; straggler
  /// quarantine demotions.
  std::vector<int> joined_workers;
  std::vector<int> drained_workers;
  std::int64_t rebalances = 0;
  std::int64_t quarantine_events = 0;
  /// Simulated iterations observed running further behind the cohort
  /// maximum than the policy staleness bound (a heterogeneity health
  /// metric; see bench_ext_elastic).
  std::int64_t staleness_violations = 0;
  /// Fingerprint of the membership transitions actually executed (see
  /// elastic::membership_fingerprint); comparable with TrainResult's.
  std::uint64_t membership_fingerprint = 0;
  /// Data integrity: distinct corruption markers the model expects checksum
  /// verification to catch, replica copies the read-repair vote rewrites,
  /// and scrub passes the run performs; comparable with TrainResult's.
  std::int64_t corruptions_detected = 0;
  std::int64_t integrity_repairs = 0;
  std::int64_t scrub_passes = 0;
  /// Mean injection-to-detection latency (next sharing block, or the final
  /// scrub for corruptions landing after the last exchange).
  SimTime detection_latency = 0;
  /// Total modelled repair cost charged into the makespan
  /// (IntegrityPolicy::sim_repair_seconds per rewritten copy).
  SimTime repair_time = 0;
  /// Fingerprint of the integrity events actually executed (see
  /// recovery::integrity_fingerprint); comparable with TrainResult's.
  std::uint64_t integrity_fingerprint = 0;
};

}  // namespace shmcaffe::cluster
