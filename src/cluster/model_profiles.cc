#include "cluster/model_profiles.h"

#include <stdexcept>

namespace shmcaffe::cluster {
namespace {

using shmcaffe::units::from_millis;

const std::vector<ModelProfile>& table() {
  static const std::vector<ModelProfile> kProfiles = {
      {ModelKind::kInceptionV1, "inception_v1", 27'900'000, from_millis(257.0)},
      {ModelKind::kResNet50, "resnet_50", 55'800'000, from_millis(225.0)},
      {ModelKind::kInceptionResnetV2, "inception_resnet_v2", 214'000'000,
       from_millis(443.0)},
      {ModelKind::kVgg16, "vgg16", 553'000'000, from_millis(194.9)},
  };
  return kProfiles;
}

}  // namespace

const ModelProfile& profile(ModelKind kind) {
  for (const ModelProfile& p : table()) {
    if (p.kind == kind) return p;
  }
  throw std::invalid_argument("unknown model kind");
}

const std::vector<ModelProfile>& all_profiles() { return table(); }

}  // namespace shmcaffe::cluster
