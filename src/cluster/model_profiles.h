// Cost profiles of the paper's four CNNs and the testbed constants.
//
// The timing simulation never executes the real networks; it replays their
// measured per-iteration costs.  Values are anchored to the unambiguous
// numbers in the paper's text (Table IV/V/VI are garbled in the source):
//
//   * Inception-ResNet-v2 parameters: 214 MB ("the communication volume ...
//     reaches 6848 MB (214 MB x 2 x 16)")
//   * ResNet-50 "has about twice as many parameters as Inception_v1"
//   * Inception-v1 ~7M parameters (GoogLeNet), 27.9 MB fp32; its 1-GPU
//     iteration time follows from Table II: 22:59 for 15 epochs of
//     1,281,167 images at batch 60 -> 320,292 iterations -> ~258 ms
//   * VGG16: 138.3M parameters = 553 MB fp32; "the time for the 2
//     iterations with 1 GPU, 389.8 ms" -> ~194.9 ms per iteration
//   * comp times per Table V's first column: ResNet-50 225 ms,
//     Inception-ResNet-v2 443 ms (trained on 320x320 inputs)
//
// See EXPERIMENTS.md for the calibration of the remaining testbed constants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace shmcaffe::cluster {

enum class ModelKind { kInceptionV1, kResNet50, kInceptionResnetV2, kVgg16 };

struct ModelProfile {
  ModelKind kind;
  std::string name;
  std::int64_t param_bytes;  ///< fp32 weights = gradient = update volume
  SimTime comp_time;         ///< fwd + bwd + local update, batch 60/worker
};

/// Profile lookup; profiles are immutable singletons.
const ModelProfile& profile(ModelKind kind);

/// All four, in the paper's order.
const std::vector<ModelProfile>& all_profiles();

/// Training-run constants shared by the experiments (§IV-C).
struct TrainingRun {
  std::int64_t images_per_epoch = 1'281'167;  ///< ILSVRC-2012 train set
  int epochs = 15;
  int batch_per_gpu = 60;

  /// Data-parallel iterations each worker performs: the epoch workload is
  /// split across workers without duplication.
  [[nodiscard]] std::int64_t iterations_per_worker(int workers) const {
    const std::int64_t total_batches =
        images_per_epoch * epochs / batch_per_gpu;
    return total_batches / workers;
  }
};

/// Hardware constants of the paper's testbed (§IV-A) and the calibrated
/// effective rates of its software stacks.
struct TestbedSpec {
  double hca_bandwidth = 7e9;        ///< 56 Gb/s FDR InfiniBand HCA
  double fabric_efficiency = 0.957;  ///< 6.7 of 7 GB/s reachable (Fig. 7)
  /// SMB server-side accumulate engine: dst += src streams on the memory
  /// server's DDR3-1866 / 4-core E5-2609v2 (2 reads + 1 write per element).
  double smb_accumulate_bandwidth = 1.5e9;
  /// Per-client effective SMB data-stream rate: the SMB transport derives
  /// from the kernel RDS module, whose single-stream throughput sits well
  /// below the HCA line rate (which is also why Fig. 7's aggregate keeps
  /// growing with the process count).
  double smb_client_stream_bandwidth = 3e9;
  /// Effective PCIe rate for intra-node NCCL rings (PCIe 3.0, 4 GPUs/root).
  double pcie_bus_bandwidth = 10e9;
  /// GPU-side elementwise weight update from a host-visible buffer.
  double gpu_update_bandwidth = 20e9;
  /// Effective per-stream rate of CPU-staged MPI over IB (Caffe-MPI v1.0 /
  /// MPICaffe move gradients through host memory, no GPUDirect).
  double mpi_stream_bandwidth = 2.8e9;
  /// Master-side single-threaded gradient averaging of Caffe-MPI.
  double cpu_reduce_bandwidth = 1.5e9;
  /// GPU <-> host staging copies of the MPI platforms.
  double host_copy_bandwidth = 6e9;
  /// Per-step synchronisation latency inside MPI_Allreduce rings.
  SimTime allreduce_step_latency = 500 * units::kMicrosecond;

  /// BVLC Caffe 1.0 multi-GPU overheads, calibrated to Table II (the paper
  /// measured only 2.7x on 8 GPUs and 2.3x on 16): a serial per-GPU
  /// data-layer/staging term and a quadratic PCIe root-complex contention
  /// term.  Applied only for K > 1.
  SimTime caffe_feed_per_gpu = units::from_millis(1.4);     // * K
  SimTime caffe_bus_contention = units::from_millis(4.81);  // * K^2

  int gpus_per_node = 4;
};

}  // namespace shmcaffe::cluster
