// Per-iteration GPU computation-time jitter.
//
// The paper (§III-E): "deviations in computation time between deep learning
// workers will occur ... because workers share the system bus, file system
// I/O, and network bandwidth."  These deviations are what make synchronous
// SGD pay max-over-workers per iteration while SEASGD pays only the mean —
// the core of the paper's speed story — so the timing simulation samples
// them explicitly.
//
// Model: with probability `slow_probability` an iteration suffers a
// transient slowdown uniform in [slow_min, slow_max] (fractions of the base
// time).  The multiplier is mean-centred so the *average* iteration time
// equals the profiled compute time (the profiles were measured as means).
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"

namespace shmcaffe::cluster {

struct ComputeJitter {
  double slow_probability = 0.25;
  double slow_min = 0.3;
  double slow_max = 1.5;

  [[nodiscard]] double mean_extra() const {
    return slow_probability * 0.5 * (slow_min + slow_max);
  }

  /// A multiplicative factor with mean 1.0.
  [[nodiscard]] double sample_multiplier(common::Rng& rng) const {
    double extra = 0.0;
    if (rng.chance(slow_probability)) extra = rng.uniform(slow_min, slow_max);
    return std::max(0.5, 1.0 + extra - mean_extra());
  }

  [[nodiscard]] SimTime sample(common::Rng& rng, SimTime base) const {
    return static_cast<SimTime>(static_cast<double>(base) * sample_multiplier(rng));
  }

  /// max over `k` independent samples (a synchronous group's iteration).
  [[nodiscard]] SimTime sample_max(common::Rng& rng, SimTime base, int k) const {
    SimTime worst = 0;
    for (int i = 0; i < k; ++i) worst = std::max(worst, sample(rng, base));
    return worst;
  }
};

}  // namespace shmcaffe::cluster
