// Per-iteration GPU computation-time jitter.
//
// The paper (§III-E): "deviations in computation time between deep learning
// workers will occur ... because workers share the system bus, file system
// I/O, and network bandwidth."  These deviations are what make synchronous
// SGD pay max-over-workers per iteration while SEASGD pays only the mean —
// the core of the paper's speed story — so the timing simulation samples
// them explicitly.
//
// Model: with probability `slow_probability` an iteration suffers a
// transient slowdown uniform in [slow_min, slow_max] (fractions of the base
// time).  The multiplier is mean-centred so the *average* iteration time
// equals the profiled compute time (the profiles were measured as means).
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"

namespace shmcaffe::cluster {

struct ComputeJitter {
  double slow_probability = 0.25;
  double slow_min = 0.3;
  double slow_max = 1.5;

  [[nodiscard]] double mean_extra() const {
    return slow_probability * 0.5 * (slow_min + slow_max);
  }

  /// A multiplicative factor with mean 1.0.
  [[nodiscard]] double sample_multiplier(common::Rng& rng) const {
    double extra = 0.0;
    if (rng.chance(slow_probability)) extra = rng.uniform(slow_min, slow_max);
    return std::max(0.5, 1.0 + extra - mean_extra());
  }

  [[nodiscard]] SimTime sample(common::Rng& rng, SimTime base) const {
    return static_cast<SimTime>(static_cast<double>(base) * sample_multiplier(rng));
  }

  /// max over `k` independent samples (a synchronous group's iteration).
  [[nodiscard]] SimTime sample_max(common::Rng& rng, SimTime base, int k) const {
    SimTime worst = 0;
    for (int i = 0; i < k; ++i) worst = std::max(worst, sample(rng, base));
    return worst;
  }
};

/// Static per-worker heterogeneity, as opposed to ComputeJitter's transient
/// per-iteration noise: a deterministic fraction of the workers are simply
/// *slower machines* (older GPUs, oversubscribed hosts, throttled NICs) for
/// the whole run.  This is the straggler population the elastic layer's
/// quarantine policy is sized against — the membership-robustness sweeps
/// (EXPERIMENTS.md "elastic scale-out") dial slow_fraction and the
/// multipliers while watching staleness violations.  Selection is a pure
/// function of (seed, worker), so every platform model in a comparison
/// slows the *same* workers.
struct HeterogeneityProfile {
  double slow_fraction = 0.0;       ///< fraction of workers that are slow machines
  double compute_multiplier = 1.0;  ///< slow worker compute time is scaled by this
  double nic_multiplier = 1.0;      ///< slow worker NIC bandwidth is divided by this
  std::uint64_t seed = 0x4e7;

  [[nodiscard]] bool is_slow(int worker) const {
    if (slow_fraction <= 0.0) return false;
    if (slow_fraction >= 1.0) return true;
    common::Rng rng = common::Rng(seed).fork(static_cast<std::uint64_t>(worker) + 1);
    return rng.chance(slow_fraction);
  }

  /// Multiplier on a worker's base computation time (>= 1 slows it down).
  [[nodiscard]] double compute_scale(int worker) const {
    return is_slow(worker) ? std::max(1.0, compute_multiplier) : 1.0;
  }

  /// Divisor on a worker's NIC / stream bandwidth (>= 1 slows it down).
  [[nodiscard]] double nic_scale(int worker) const {
    return is_slow(worker) ? std::max(1.0, nic_multiplier) : 1.0;
  }
};

}  // namespace shmcaffe::cluster
