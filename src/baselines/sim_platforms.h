// Timed models of the baseline platforms (for the Fig. 9/10 benches).
//
//  * simulate_caffe — BVLC Caffe 1.0 on one node with K GPUs: synchronous
//    NCCL allreduce over PCIe plus the calibrated serial data-layer and
//    PCIe-contention overheads that explain the paper's poor Caffe scaling
//    (2.7x on 8 GPUs, 2.3x on 16; Table II).
//  * simulate_caffe_mpi — Inspur Caffe-MPI v1.0 star: slaves stream
//    gradients through the master's CPU staging path, the master averages
//    on the CPU and streams updated weights back.
//  * simulate_mpicaffe — MPI_Allreduce SSGD: host-staged ring allreduce
//    with per-step synchronisation latency.
//
// All synchronous platforms pay max-over-workers computation time per
// iteration (the straggler effect §III-E attributes to shared buses, file
// systems and networks) — that, not raw bandwidth, is the largest part of
// why the paper's ShmCaffe wins.
#pragma once

#include "cluster/jitter.h"
#include "cluster/model_profiles.h"
#include "cluster/platform_result.h"
#include "elastic/membership.h"

namespace shmcaffe::fault {
class FaultInjector;
}  // namespace shmcaffe::fault

namespace shmcaffe::baselines {

struct SimPlatformOptions {
  cluster::ModelKind model = cluster::ModelKind::kInceptionV1;
  int workers = 8;
  std::int64_t iterations = 200;
  cluster::TestbedSpec testbed;
  cluster::ComputeJitter jitter;
  std::uint64_t seed = 0x5b;
  /// Optional fault injection; not owned, must outlive the call.  A
  /// synchronous platform pays every worker's stall (max-over-workers per
  /// iteration) and cannot continue past a crash: the run truncates at the
  /// earliest crash iteration.  nullptr = fault-free.
  const fault::FaultInjector* faults = nullptr;
  /// Static per-worker compute/NIC heterogeneity — the same planted slow
  /// machines as the ShmCaffe model when the profiles match, so the
  /// synchronous platforms pay max-over-workers for exactly the workers
  /// SEASGD merely quarantines.
  cluster::HeterogeneityProfile heterogeneity;
  /// Elastic membership plan; not owned, must outlive the call.  Only the
  /// master-coordinated star (simulate_caffe_mpi) can honour it: the master
  /// admits joiners and releases drained slaves between synchronous steps
  /// (rank 0, the hub, can never leave).  The fixed NCCL / MPI rings
  /// (simulate_caffe, simulate_mpicaffe) cannot resize a collective mid-run
  /// and ignore the plan — their membership counters stay zero, which is
  /// itself the comparison the elastic bench draws.
  const elastic::MembershipPlan* membership = nullptr;
};

cluster::PlatformTiming simulate_caffe(const SimPlatformOptions& options);
cluster::PlatformTiming simulate_caffe_mpi(const SimPlatformOptions& options);
cluster::PlatformTiming simulate_mpicaffe(const SimPlatformOptions& options);

}  // namespace shmcaffe::baselines
