#include "baselines/functional_ssgd.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "coll/nccl.h"
#include "core/evaluate.h"
#include "data/loader.h"
#include "dl/param_vector.h"
#include "minimpi/minimpi.h"

namespace shmcaffe::baselines {
namespace {

constexpr int kGradTag = 101;
constexpr int kWeightTag = 102;

struct SsgdShared {
  const core::DistTrainOptions* options = nullptr;
  SsgdTransport transport = SsgdTransport::kNcclAllReduce;
  const data::SynthImageDataset* train_set = nullptr;
  const data::SynthImageDataset* test_set = nullptr;
  minimpi::Context* mpi = nullptr;
  coll::DeviceGroup* group = nullptr;
  std::int64_t target_iterations = 0;
  int lr_step_iterations = 0;
  std::int64_t iters_per_epoch = 0;
  std::mutex curve_mutex;
  std::vector<core::EpochMetrics> curve;
};

void run_rank(SsgdShared& shared, int rank) {
  const core::DistTrainOptions& options = *shared.options;
  const int world = options.workers;
  minimpi::Endpoint mpi = shared.mpi->endpoint(rank);
  coll::Communicator comm = shared.group->communicator(rank);

  dl::Net net = dl::make_model(options.model_family, options.input);
  const std::size_t param_count = net.param_count();
  std::vector<float> flat(param_count);

  // Rank 0 initialises; everyone adopts the same starting point.
  if (rank == 0) {
    common::Rng init_rng(options.seed);
    net.init_params(init_rng);
    dl::copy_params_to(net, flat);
  }
  mpi.broadcast(0, flat);
  dl::copy_params_from(net, flat);

  dl::SolverOptions solver_options = options.solver;
  solver_options.step_size = shared.lr_step_iterations;
  dl::SgdSolver solver(net, solver_options);

  data::Prefetcher prefetcher(
      data::ShardedLoader(*shared.train_set, rank, world, options.batch_size,
                          options.seed ^ 0xda7aULL),
      options.prefetch_depth);

  std::vector<float> grads(param_count);
  std::vector<float> incoming(param_count);

  for (std::int64_t iteration = 0; iteration < shared.target_iterations; ++iteration) {
    data::Batch batch = prefetcher.next();
    net.input("data") = std::move(batch.data);
    net.input("label") = std::move(batch.labels);
    (void)net.forward(/*train=*/true);
    net.backward();

    switch (shared.transport) {
      case SsgdTransport::kNcclAllReduce: {
        dl::copy_grads_to(net, grads);
        comm.all_reduce_mean(grads);
        dl::copy_grads_from(net, grads);
        solver.step();
        break;
      }
      case SsgdTransport::kMpiAllReduce: {
        dl::copy_grads_to(net, grads);
        mpi.allreduce_sum(grads);
        const float inv = 1.0F / static_cast<float>(world);
        for (float& g : grads) g *= inv;
        dl::copy_grads_from(net, grads);
        solver.step();
        break;
      }
      case SsgdTransport::kMpiStar: {
        dl::copy_grads_to(net, grads);
        if (rank == 0) {
          // Master gathers and averages the gradients, updates the master
          // weights, then pushes them to every slave.
          for (int r = 1; r < world; ++r) {
            mpi.recv_floats(r, kGradTag, incoming);
            for (std::size_t i = 0; i < param_count; ++i) grads[i] += incoming[i];
          }
          const float inv = 1.0F / static_cast<float>(world);
          for (float& g : grads) g *= inv;
          dl::copy_grads_from(net, grads);
          solver.step();
          dl::copy_params_to(net, flat);
          for (int r = 1; r < world; ++r) mpi.send_floats(r, kWeightTag, flat);
        } else {
          mpi.send_floats(0, kGradTag, grads);
          mpi.recv_floats(0, kWeightTag, flat);
          dl::copy_params_from(net, flat);
          net.zero_param_grads();
        }
        break;
      }
    }

    // Rank 0 evaluates the (identical) model at epoch boundaries.
    if (rank == 0 && (iteration + 1) % shared.iters_per_epoch == 0) {
      const int epoch = static_cast<int>((iteration + 1) / shared.iters_per_epoch);
      const core::EvalResult eval = core::evaluate(net, *shared.test_set);
      std::scoped_lock lock(shared.curve_mutex);
      shared.curve.push_back(core::EpochMetrics{epoch, eval.loss, eval.accuracy});
    }
  }
}

}  // namespace

core::TrainResult train_ssgd(const core::DistTrainOptions& options, SsgdTransport transport) {
  if (options.workers < 1) throw std::invalid_argument("workers must be >= 1");

  const data::SynthImageDataset train_set(options.train_data);
  const data::SynthImageDataset test_set(options.test_data);

  minimpi::Context mpi(options.workers);
  coll::DeviceGroup group(options.workers);

  SsgdShared shared;
  shared.options = &options;
  shared.transport = transport;
  shared.train_set = &train_set;
  shared.test_set = &test_set;
  shared.mpi = &mpi;
  shared.group = &group;

  const std::int64_t iters_per_epoch_total =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(train_set.size()) /
                                    options.batch_size);
  shared.iters_per_epoch =
      std::max<std::int64_t>(1, iters_per_epoch_total / options.workers);
  shared.target_iterations = shared.iters_per_epoch * options.epochs;
  shared.lr_step_iterations =
      std::max<int>(1, static_cast<int>(shared.iters_per_epoch) * 4);

  const auto wall_start = std::chrono::steady_clock::now();
  // One thread per distributed rank (worker lifecycle, not compute).
  std::vector<std::thread> threads;  // lint:allow(no-raw-thread)
  threads.reserve(static_cast<std::size_t>(options.workers));
  for (int r = 0; r < options.workers; ++r) {
    threads.emplace_back([&shared, r] { run_rank(shared, r); });
  }
  for (auto& t : threads) t.join();

  core::TrainResult result;
  result.curve = std::move(shared.curve);
  if (!result.curve.empty()) {
    result.final_accuracy = result.curve.back().test_accuracy;
    result.final_loss = result.curve.back().test_loss;
  }
  result.iterations_per_worker.assign(static_cast<std::size_t>(options.workers),
                                      shared.target_iterations);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

}  // namespace shmcaffe::baselines
