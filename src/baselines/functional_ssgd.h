// Functional synchronous-SGD baseline platforms.
//
// All three baselines of the paper's §IV-C are synchronous data-parallel SGD
// differing only in their parameter-exchange transport:
//
//  * kNcclAllReduce — BVLC Caffe's multi-GPU path: ncclAllReduce of the
//    gradients inside one process (our coll::DeviceGroup).
//  * kMpiStar — Inspur Caffe-MPI v1.0: slaves MPI_Send gradients to the
//    master, the master averages them, updates the master weights, and
//    MPI_Sends the updated weights back (star topology; slaves adopt the
//    master's weights and keep no optimiser state of their own).
//  * kMpiAllReduce — "MPICaffe": MPI_Allreduce of the gradients; every rank
//    applies the identical solver update.
//
// Mathematically all three compute the same update from the same effective
// batch, so their convergence curves must coincide (a property the test
// suite checks); they differ only in systems behaviour.
#pragma once

#include "core/config.h"

namespace shmcaffe::baselines {

enum class SsgdTransport { kNcclAllReduce, kMpiStar, kMpiAllReduce };

core::TrainResult train_ssgd(const core::DistTrainOptions& options, SsgdTransport transport);

}  // namespace shmcaffe::baselines
