#include "baselines/sim_platforms.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "coll/pcie_model.h"
#include "fault/injector.h"
#include "minimpi/sim_mpi.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace shmcaffe::baselines {
namespace {

void validate(const SimPlatformOptions& options) {
  if (options.workers < 1) throw std::invalid_argument("workers must be >= 1");
  if (options.iterations < 1) throw std::invalid_argument("iterations must be >= 1");
}

/// Mean of the per-worker compute samples; comm for a synchronous platform
/// is everything else in the iteration.
struct SyncIterationAccounting {
  SimTime comp_sum = 0;  // sum over workers and iterations of own compute
  SimTime iter_sum = 0;  // sum over iterations of the full iteration time
  std::int64_t rounds = 0;  // iterations actually accounted (< target on crash)
  std::int64_t worker_rounds = 0;  // sum over rounds of the live cohort size

  void add(const std::vector<SimTime>& comps, SimTime iteration_time) {
    for (SimTime c : comps) comp_sum += c;
    iter_sum += iteration_time * static_cast<SimTime>(comps.size());
    rounds += 1;
    worker_rounds += static_cast<std::int64_t>(comps.size());
  }

  [[nodiscard]] cluster::PlatformTiming finish(std::int64_t iterations,
                                               SimTime makespan) const {
    cluster::PlatformTiming timing;
    const auto denom = std::max<std::int64_t>(1, worker_rounds);
    timing.mean_comp = comp_sum / denom;
    timing.mean_comm = iter_sum / denom - timing.mean_comp;
    timing.makespan = makespan;
    timing.iterations = iterations;
    timing.completed_worker_iterations = worker_rounds;
    return timing;
  }
};

/// A worker's base compute time under the planted-heterogeneity profile.
SimTime het_comp_base(const SimPlatformOptions& options,
                      const cluster::ModelProfile& model, int worker) {
  return static_cast<SimTime>(static_cast<double>(model.comp_time) *
                              options.heterogeneity.compute_scale(worker));
}

/// Earliest crash iteration over `workers`, or -1 if nobody crashes.  A
/// synchronous platform halts there: the collective can never complete again.
std::int64_t earliest_crash(const fault::FaultInjector* faults, int workers) {
  if (faults == nullptr) return -1;
  std::int64_t earliest = -1;
  for (int w = 0; w < workers; ++w) {
    const std::int64_t at = faults->crash_iteration(w);
    if (at >= 0 && (earliest < 0 || at < earliest)) earliest = at;
  }
  return earliest;
}

/// Per-iteration straggler penalty: a synchronous step waits for the most
/// stalled worker.
SimTime max_stall(const fault::FaultInjector* faults, int workers, std::int64_t it) {
  if (faults == nullptr) return 0;
  double worst = 0.0;
  for (int w = 0; w < workers; ++w) {
    worst = std::max(worst, faults->stall_seconds(w, it));
  }
  return worst > 0.0 ? units::from_seconds(worst) : 0;
}

}  // namespace

cluster::PlatformTiming simulate_caffe(const SimPlatformOptions& options) {
  validate(options);
  const cluster::ModelProfile& model = cluster::profile(options.model);
  const cluster::TestbedSpec& spec = options.testbed;
  const coll::PcieModel pcie{spec.pcie_bus_bandwidth, 20 * units::kMicrosecond};
  common::Rng rng(options.seed);

  const int k = options.workers;
  const std::int64_t crash_at = earliest_crash(options.faults, k);
  SyncIterationAccounting acc;
  SimTime makespan = 0;
  std::vector<SimTime> comps(static_cast<std::size_t>(k));
  for (std::int64_t it = 0; it < options.iterations; ++it) {
    if (crash_at >= 0 && it >= crash_at) break;  // collective can never complete
    for (int w = 0; w < k; ++w) {
      comps[static_cast<std::size_t>(w)] =
          options.jitter.sample(rng, het_comp_base(options, model, w));
    }
    const SimTime comp_max = *std::max_element(comps.begin(), comps.end());
    SimTime iteration = comp_max + max_stall(options.faults, k, it);
    if (k > 1) {
      iteration += pcie.ring_allreduce_time(k, model.param_bytes);
      iteration += spec.caffe_feed_per_gpu * k;
      iteration += spec.caffe_bus_contention * k * k;
    }
    acc.add(comps, iteration);
    makespan += iteration;
  }
  cluster::PlatformTiming timing = acc.finish(options.iterations, makespan);
  if (crash_at >= 0 && crash_at < options.iterations) timing.crashed_workers = 1;
  return timing;
}

cluster::PlatformTiming simulate_caffe_mpi(const SimPlatformOptions& options) {
  validate(options);
  const cluster::ModelProfile& model = cluster::profile(options.model);
  const cluster::TestbedSpec& spec = options.testbed;
  const int k = options.workers;
  const int capacity =
      options.membership != nullptr ? options.membership->capacity(k) : k;
  common::Rng rng(options.seed);

  sim::Simulation sim;
  net::FabricOptions fabric_options;
  fabric_options.efficiency = spec.fabric_efficiency;
  net::Fabric fabric(sim, fabric_options);

  // Slaves have full-rate HCAs (a planted slow machine's NIC divides its
  // rate); all parameter traffic funnels through the master's CPU staging
  // pipeline (Caffe-MPI v1.0 moves gradients through host memory without
  // GPUDirect).
  std::vector<net::Fabric::Endpoint> endpoints;
  for (int r = 0; r < capacity; ++r) {
    endpoints.push_back(fabric.add_endpoint(
        "rank" + std::to_string(r),
        spec.hca_bandwidth / options.heterogeneity.nic_scale(r)));
  }
  const net::LinkId staging = fabric.add_link("master-staging", spec.mpi_stream_bandwidth);

  // The star is master-coordinated, so it alone among the baselines can
  // honour an elastic plan: the master admits joiners and releases drained
  // slaves between synchronous steps.
  std::optional<elastic::MembershipService> membership;
  if (options.membership != nullptr) membership.emplace(k, capacity, /*shards=*/1);

  SyncIterationAccounting acc;
  const SimTime host_copy =
      units::transfer_time(model.param_bytes, spec.host_copy_bandwidth);

  sim.spawn([](sim::Simulation& s, net::Fabric& f, const SimPlatformOptions& opts,
               const cluster::ModelProfile& m, const cluster::TestbedSpec& sp,
               std::vector<net::Fabric::Endpoint>& eps, net::LinkId stage,
               common::Rng& r, SimTime hcopy, int initial,
               elastic::MembershipService* service,
               SyncIterationAccounting& acc) -> sim::Task<> {
    const int n = static_cast<int>(eps.size());
    std::vector<char> active(static_cast<std::size_t>(n), 0);
    for (int w = 0; w < initial; ++w) active[static_cast<std::size_t>(w)] = 1;
    const std::int64_t crash_at = earliest_crash(opts.faults, n);
    std::vector<SimTime> comps;
    for (std::int64_t it = 0; it < opts.iterations; ++it) {
      if (crash_at >= 0 && it >= crash_at) break;  // star can never gather again
      if (service != nullptr) {
        // The cohort marches in lockstep, so a planned trigger is met the
        // moment the shared iteration counter reaches it.
        for (const elastic::MembershipEvent& ev : opts.membership->joins()) {
          if (ev.at_iteration <= it && !active[static_cast<std::size_t>(ev.worker)]) {
            active[static_cast<std::size_t>(ev.worker)] = 1;
            service->join(ev.worker, ev.at_iteration);
          }
        }
        for (const elastic::MembershipEvent& ev : opts.membership->drains()) {
          // Rank 0 is the star's hub and can never leave.
          if (ev.worker != 0 && ev.at_iteration <= it &&
              active[static_cast<std::size_t>(ev.worker)]) {
            active[static_cast<std::size_t>(ev.worker)] = 0;
            service->drain(ev.worker, ev.at_iteration);
          }
        }
      }
      const SimTime iter_start = s.now();
      comps.clear();
      SimTime comp_max = 0;
      for (int w = 0; w < n; ++w) {
        if (!active[static_cast<std::size_t>(w)]) continue;
        const SimTime c = opts.jitter.sample(r, het_comp_base(opts, m, w));
        comps.push_back(c);
        comp_max = std::max(comp_max, c);
      }
      // All GPUs compute then stage to host; an injected stall delays the
      // slowest worker and therefore the whole synchronous step.
      co_await s.delay(comp_max + hcopy + max_stall(opts.faults, n, it));

      // Gather: every active slave streams its gradients through the
      // master's staging link (concurrent flows; the link is the bottleneck).
      std::vector<sim::Task<void>> gather;
      for (int slave = 1; slave < n; ++slave) {
        if (!active[static_cast<std::size_t>(slave)]) continue;
        gather.push_back(f.transfer(eps[static_cast<std::size_t>(slave)].tx, stage,
                                    m.param_bytes));
      }
      co_await sim::when_all(s, std::move(gather));
      // Master averages the live cohort's gradients on the CPU and applies
      // the update.
      co_await s.delay(units::transfer_time(
          m.param_bytes * static_cast<std::int64_t>(comps.size()),
          sp.cpu_reduce_bandwidth));
      // Scatter the refreshed master weights.
      std::vector<sim::Task<void>> scatter;
      for (int slave = 1; slave < n; ++slave) {
        if (!active[static_cast<std::size_t>(slave)]) continue;
        scatter.push_back(f.transfer(stage, eps[static_cast<std::size_t>(slave)].rx,
                                     m.param_bytes));
      }
      co_await sim::when_all(s, std::move(scatter));
      co_await s.delay(hcopy);  // slaves stage the weights back to the GPU

      acc.add(comps, s.now() - iter_start);
    }
  }(sim, fabric, options, model, spec, endpoints, staging, rng, host_copy, k,
    membership.has_value() ? &*membership : nullptr, acc));
  sim.run();
  cluster::PlatformTiming timing = acc.finish(options.iterations, sim.now());
  if (acc.rounds < options.iterations) timing.crashed_workers = 1;
  if (membership.has_value()) {
    timing.joined_workers = membership->joined();
    timing.drained_workers = membership->drained();
    timing.rebalances = membership->rebalances();
    timing.quarantine_events = membership->quarantine_events();
    // Planned joins/drains only (no straggler detection in a synchronous
    // star), filtered by what the run reached before any crash truncation.
    const elastic::MembershipPolicy policy;
    timing.membership_fingerprint = elastic::membership_fingerprint(
        elastic::filter_executed(
            elastic::membership_schedule(options.membership, nullptr, policy, k),
            membership->execution()));
  }
  return timing;
}

cluster::PlatformTiming simulate_mpicaffe(const SimPlatformOptions& options) {
  validate(options);
  const cluster::ModelProfile& model = cluster::profile(options.model);
  const cluster::TestbedSpec& spec = options.testbed;
  const int k = options.workers;
  common::Rng rng(options.seed);

  sim::Simulation sim;
  net::FabricOptions fabric_options;
  fabric_options.efficiency = spec.fabric_efficiency;
  net::Fabric fabric(sim, fabric_options);

  // Each rank's allreduce traffic is bounded by its host staging rate (a
  // planted slow machine's NIC divides it further).
  std::vector<net::Fabric::Endpoint> endpoints;
  for (int r = 0; r < k; ++r) {
    endpoints.push_back(fabric.add_endpoint(
        "rank" + std::to_string(r),
        spec.mpi_stream_bandwidth / options.heterogeneity.nic_scale(r)));
  }
  minimpi::SimGroupOps group(sim, fabric, endpoints);

  SyncIterationAccounting acc;
  std::vector<SimTime> comps(static_cast<std::size_t>(k));
  const SimTime host_copy =
      units::transfer_time(model.param_bytes, spec.host_copy_bandwidth);
  const SimTime step_sync =
      k > 1 ? spec.allreduce_step_latency * 2 * (k - 1) : 0;

  sim.spawn([](sim::Simulation& s, const SimPlatformOptions& opts,
               const cluster::ModelProfile& m, minimpi::SimGroupOps& g, common::Rng& r,
               std::vector<SimTime>& comps, SimTime hcopy, SimTime sync,
               SyncIterationAccounting& acc) -> sim::Task<> {
    const std::int64_t crash_at =
        earliest_crash(opts.faults, static_cast<int>(comps.size()));
    for (std::int64_t it = 0; it < opts.iterations; ++it) {
      if (crash_at >= 0 && it >= crash_at) break;  // ring is broken for good
      const SimTime iter_start = s.now();
      for (std::size_t w = 0; w < comps.size(); ++w) {
        comps[w] = opts.jitter.sample(r, het_comp_base(opts, m, static_cast<int>(w)));
      }
      const SimTime comp_max = *std::max_element(comps.begin(), comps.end());
      co_await s.delay(comp_max + hcopy +
                       max_stall(opts.faults, static_cast<int>(comps.size()), it));
      co_await g.ring_allreduce(m.param_bytes);
      co_await s.delay(sync + hcopy);
      acc.add(comps, s.now() - iter_start);
    }
  }(sim, options, model, group, rng, comps, host_copy, step_sync, acc));
  sim.run();
  cluster::PlatformTiming timing = acc.finish(options.iterations, sim.now());
  if (acc.rounds < options.iterations) timing.crashed_workers = 1;
  return timing;
}

}  // namespace shmcaffe::baselines
