// Classic asynchronous parameter server and Downpour-style ASGD.
//
// The paper's related work (§II) contrasts ShmCaffe's *passive* shared
// buffer with the classic *active* parameter server: "the parameter server
// allocates a memory area for storing global parameters in its own local
// memory, updates global parameters with parameters sent periodically from
// slave workers and then distributes the updated global parameters".  The
// SMB deliberately provides no update logic — only buffers and accumulate.
//
// This module implements the classic design so the two philosophies can be
// compared on equal footing:
//   * ParameterServer — holds W, applies W -= lr * g per gradient push
//     (exclusively), serves weight pulls;
//   * train_downpour — Downpour SGD (DistBelief): every worker fetches W
//     every n_fetch iterations, pushes accumulated gradients every n_push
//     iterations, and otherwise trains its local replica.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ordered_mutex.h"
#include "core/config.h"

namespace shmcaffe::baselines {

class ParameterServer {
 public:
  explicit ParameterServer(std::size_t count);

  // lint:allow-next-line(lock-region) weights_.size() is fixed by the ctor
  [[nodiscard]] std::size_t size() const { return weights_.size(); }

  /// Seeds the global weights (master, once).
  void initialize(std::span<const float> weights);

  /// Copies the current global weights into `dst`.
  void pull(std::span<float> dst) const;

  /// Applies W -= lr * gradients, exclusively.
  void push_gradient(std::span<const float> gradients, float lr);

  [[nodiscard]] std::uint64_t update_count() const;

 private:
  /// Leaf lock: pull/push/initialize copy under it and acquire nothing else.
  mutable common::OrderedMutex mutex_{"baselines.async_ps.weights",
                                      common::lockrank::kAsyncPsWeights};
  // weights_.size() is fixed by the ctor, so size() reads it lock-free;
  // the contents are guarded.
  std::vector<float> weights_ SHMCAFFE_GUARDED_BY(mutex_);
  std::uint64_t updates_ SHMCAFFE_GUARDED_BY(mutex_) = 0;
};

struct DownpourOptions {
  int fetch_interval = 1;  ///< n_fetch: pull W every this many iterations
  int push_interval = 1;   ///< n_push: push gradients every this many iterations
};

/// Downpour-style asynchronous SGD over a classic parameter server.
core::TrainResult train_downpour(const core::DistTrainOptions& options,
                                 DownpourOptions downpour = {});

}  // namespace shmcaffe::baselines
