#include "baselines/async_ps.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/evaluate.h"
#include "data/loader.h"
#include "dl/param_vector.h"

namespace shmcaffe::baselines {

ParameterServer::ParameterServer(std::size_t count) : weights_(count, 0.0F) {
  if (count == 0) throw std::invalid_argument("ParameterServer: empty weights");
}

void ParameterServer::initialize(std::span<const float> weights) {
  std::scoped_lock lock(mutex_);
  if (weights.size() != weights_.size()) {
    throw std::invalid_argument("ParameterServer: initialize size mismatch");
  }
  std::copy(weights.begin(), weights.end(), weights_.begin());
}

void ParameterServer::pull(std::span<float> dst) const {
  std::scoped_lock lock(mutex_);
  if (dst.size() != weights_.size()) {
    throw std::invalid_argument("ParameterServer: pull size mismatch");
  }
  std::copy(weights_.begin(), weights_.end(), dst.begin());
}

void ParameterServer::push_gradient(std::span<const float> gradients, float lr) {
  std::scoped_lock lock(mutex_);
  if (gradients.size() != weights_.size()) {
    throw std::invalid_argument("ParameterServer: push size mismatch");
  }
  for (std::size_t i = 0; i < weights_.size(); ++i) weights_[i] -= lr * gradients[i];
  ++updates_;
}

std::uint64_t ParameterServer::update_count() const {
  std::scoped_lock lock(mutex_);
  return updates_;
}

namespace {

struct DownpourShared {
  const core::DistTrainOptions* options = nullptr;
  const DownpourOptions* downpour = nullptr;
  const data::SynthImageDataset* train_set = nullptr;
  ParameterServer* server = nullptr;
  std::int64_t target_iterations = 0;
  int lr_step_iterations = 0;
  std::atomic<std::int64_t> total_iterations{0};
};

void run_downpour_worker(DownpourShared& shared, int worker) {
  const core::DistTrainOptions& options = *shared.options;
  const DownpourOptions& downpour = *shared.downpour;

  dl::Net net = dl::make_model(options.model_family, options.input);
  const std::size_t param_count = net.param_count();

  std::vector<float> weights(param_count);
  shared.server->pull(weights);
  dl::copy_params_from(net, weights);

  dl::SolverOptions solver_options = options.solver;
  solver_options.step_size = shared.lr_step_iterations;
  // The local replica steps with plain SGD; the authoritative update
  // happens at the server (Downpour keeps optimiser state server-side).
  dl::SgdSolver solver(net, solver_options);

  data::Prefetcher prefetcher(
      data::ShardedLoader(*shared.train_set, worker, options.workers, options.batch_size,
                          options.seed ^ 0xd0f9ULL),
      options.prefetch_depth);

  std::vector<float> grads(param_count);
  std::vector<float> accumulated(param_count, 0.0F);
  int since_push = 0;

  for (std::int64_t iteration = 0; iteration < shared.target_iterations; ++iteration) {
    if (iteration % downpour.fetch_interval == 0) {
      shared.server->pull(weights);
      dl::copy_params_from(net, weights);
    }
    data::Batch batch = prefetcher.next();
    net.input("data") = std::move(batch.data);
    net.input("label") = std::move(batch.labels);
    (void)net.forward(/*train=*/true);
    net.backward();
    dl::copy_grads_to(net, grads);
    for (std::size_t i = 0; i < param_count; ++i) accumulated[i] += grads[i];
    ++since_push;
    if (since_push >= downpour.push_interval) {
      shared.server->push_gradient(
          accumulated,
          static_cast<float>(solver.learning_rate(static_cast<int>(iteration))));
      std::fill(accumulated.begin(), accumulated.end(), 0.0F);
      since_push = 0;
    }
    // The local replica also steps so training continues between fetches.
    solver.step();
    shared.total_iterations.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

core::TrainResult train_downpour(const core::DistTrainOptions& options,
                                 DownpourOptions downpour) {
  if (options.workers < 1) throw std::invalid_argument("workers must be >= 1");
  if (downpour.fetch_interval < 1 || downpour.push_interval < 1) {
    throw std::invalid_argument("downpour intervals must be >= 1");
  }

  const data::SynthImageDataset train_set(options.train_data);
  const data::SynthImageDataset test_set(options.test_data);

  dl::Net init_net = dl::make_model(options.model_family, options.input);
  common::Rng init_rng(options.seed);
  init_net.init_params(init_rng);
  ParameterServer server(init_net.param_count());
  {
    std::vector<float> init(init_net.param_count());
    dl::copy_params_to(init_net, init);
    server.initialize(init);
  }

  DownpourShared shared;
  shared.options = &options;
  shared.downpour = &downpour;
  shared.train_set = &train_set;
  shared.server = &server;
  const std::int64_t iters_per_epoch_total =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(train_set.size()) /
                                    options.batch_size);
  const std::int64_t per_worker_per_epoch =
      std::max<std::int64_t>(1, iters_per_epoch_total / options.workers);
  shared.target_iterations = per_worker_per_epoch * options.epochs;
  shared.lr_step_iterations = std::max<int>(1, static_cast<int>(per_worker_per_epoch) * 4);

  const auto wall_start = std::chrono::steady_clock::now();
  // One thread per Downpour worker (rank model, not compute parallelism).
  std::vector<std::thread> threads;  // lint:allow(no-raw-thread)
  for (int w = 0; w < options.workers; ++w) {
    threads.emplace_back([&shared, w] { run_downpour_worker(shared, w); });
  }

  // Orchestrator: evaluate the *server's* weights at epoch boundaries.
  core::TrainResult result;
  dl::Net eval_net = dl::make_model(options.model_family, options.input);
  std::vector<float> snapshot(init_net.param_count());
  const std::int64_t total_target =
      shared.target_iterations * static_cast<std::int64_t>(options.workers);
  const std::int64_t per_epoch_total =
      std::max<std::int64_t>(1, total_target / options.epochs);
  std::atomic<bool> joined{false};
  std::thread joiner([&threads, &joined] {  // lint:allow(no-raw-thread)
    for (auto& t : threads) t.join();
    joined = true;
  });
  int next_epoch = 1;
  while (!joined.load(std::memory_order_acquire)) {
    const std::int64_t done = shared.total_iterations.load(std::memory_order_relaxed);
    if (next_epoch < options.epochs &&
        done >= static_cast<std::int64_t>(next_epoch) * per_epoch_total) {
      server.pull(snapshot);
      dl::copy_params_from(eval_net, snapshot);
      const core::EvalResult eval = core::evaluate(eval_net, test_set);
      result.curve.push_back(core::EpochMetrics{next_epoch, eval.loss, eval.accuracy});
      ++next_epoch;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  joiner.join();

  server.pull(snapshot);
  dl::copy_params_from(eval_net, snapshot);
  const core::EvalResult final_eval = core::evaluate(eval_net, test_set);
  result.final_accuracy = final_eval.accuracy;
  result.final_loss = final_eval.loss;
  result.curve.push_back(
      core::EpochMetrics{options.epochs, final_eval.loss, final_eval.accuracy});
  result.iterations_per_worker.assign(static_cast<std::size_t>(options.workers),
                                      shared.target_iterations);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

}  // namespace shmcaffe::baselines
