// In-process MPI subset ("MiniMPI").
//
// Ranks are OS threads sharing one Context.  The subset covers everything
// the four platforms in the paper call:
//   * ShmCaffe     — init, rank/size, Bcast of the SHM key, Barrier
//   * Caffe-MPI    — Send/Recv (star-topology gradient gather / weight push)
//   * MPICaffe     — Allreduce (ring) over gradients
//
// Point-to-point messages are byte vectors with (source, tag) matching and
// FIFO order per (source, tag).  Collectives must be entered by all ranks in
// the same order (standard MPI contract); tags for their internal traffic
// are drawn from a reserved space keyed by a per-rank operation counter, so
// user tags never collide with collective traffic.
//
// A simulated-time twin for the performance model lives in sim_mpi.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/ordered_mutex.h"

namespace shmcaffe::minimpi {

inline constexpr int kAnySource = -1;

class MpiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Endpoint;

/// Shared state of one MPI "world".  Create it once, hand each thread its
/// Endpoint via `endpoint(rank)`.
class Context {
 public:
  explicit Context(int size);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Endpoint endpoint(int rank);

 private:
  friend class Endpoint;

  struct Message {
    int source = 0;
    int tag = 0;
    std::vector<std::byte> data;
  };

  // Mailbox and barrier locks are leaves of the global lock order: nothing
  // else is ever acquired while one is held (delivery copies the payload in
  // and out under the lock, and the barrier only touches its own state).
  struct Mailbox {
    common::OrderedMutex mutex{"minimpi.mailbox", common::lockrank::kMpiMailbox};
    std::condition_variable_any cv;
    std::deque<Message> messages SHMCAFFE_GUARDED_BY(mutex);
  };

  struct BarrierState {
    common::OrderedMutex mutex{"minimpi.barrier", common::lockrank::kMpiBarrier};
    std::condition_variable_any cv;
    int arrived SHMCAFFE_GUARDED_BY(mutex) = 0;
    std::uint64_t generation SHMCAFFE_GUARDED_BY(mutex) = 0;
  };

  void post(int to, Message message);
  SHMCAFFE_BLOCKS Message take(int at, int from, int tag);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::uint64_t> collective_counter_;  // per rank, local
  BarrierState barrier_;
};

/// A rank's handle onto the world.  Cheap to copy; one per thread.
class Endpoint {
 public:
  Endpoint() = default;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return context_->size(); }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }

  // --- point-to-point ------------------------------------------------------

  void send_bytes(int to, int tag, std::vector<std::byte> data);
  /// Blocks until a message from `from` (or kAnySource) with `tag` arrives.
  SHMCAFFE_BLOCKS std::vector<std::byte> recv_bytes(int from, int tag);

  template <typename T>
  void send_value(int to, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> data(sizeof(T));
    std::memcpy(data.data(), &value, sizeof(T));
    send_bytes(to, tag, std::move(data));
  }

  template <typename T>
  T recv_value(int from, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> data = recv_bytes(from, tag);
    if (data.size() != sizeof(T)) throw MpiError("recv_value size mismatch");
    T value;
    std::memcpy(&value, data.data(), sizeof(T));
    return value;
  }

  void send_floats(int to, int tag, std::span<const float> values);
  /// Receives into `dst`; the message length must equal dst.size().
  void recv_floats(int from, int tag, std::span<float> dst);

  // --- collectives (all ranks must call, same order) -----------------------

  SHMCAFFE_BLOCKS void barrier();

  /// Root's buffer is broadcast into everyone's `data`.
  SHMCAFFE_BLOCKS void broadcast(int root, std::span<float> data);
  template <typename T>
  void broadcast_value(int root, T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_collective_tag();
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send_value(r, tag, value);
      }
    } else {
      value = recv_value<T>(root, tag);
    }
  }

  /// Elementwise sum across ranks, result in everyone's `data` (ring).
  SHMCAFFE_BLOCKS void allreduce_sum(std::span<float> data);

  /// Elementwise sum across ranks, result only at root.
  void reduce_sum(int root, std::span<float> data);

  /// Gathers each rank's equally-sized contribution; valid only at root,
  /// ordered by rank.  Non-roots get an empty vector.
  std::vector<float> gather(int root, std::span<const float> contribution);

 private:
  friend class Context;
  Endpoint(Context* context, int rank) : context_(context), rank_(rank) {}

  [[nodiscard]] int next_collective_tag();

  Context* context_ = nullptr;
  int rank_ = 0;
};

}  // namespace shmcaffe::minimpi
