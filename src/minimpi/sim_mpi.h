// Simulated-time twin of the MiniMPI collectives.
//
// In the timing model the synchronous platforms (Caffe-MPI, MPICaffe) are
// driven one iteration at a time, so their collectives are modelled as joint
// operations over the ranks' fabric endpoints rather than as per-rank
// message exchanges:
//
//  * star_gather_scatter — Caffe-MPI's pattern: every slave sends its
//    gradients to the master (master rx contention), the master averages and
//    sends updated weights back to every slave (master tx contention).
//  * ring_allreduce — MPICaffe's MPI_Allreduce: 2(N-1) synchronous steps of
//    `bytes / N` around the ring.
//  * broadcast — root pushes `bytes` to every other rank concurrently.
//
// All operations complete when the slowest participant finishes, matching
// the synchronous SGD barrier the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace shmcaffe::minimpi {

class SimGroupOps {
 public:
  SimGroupOps(sim::Simulation& sim, net::Fabric& fabric,
              std::vector<net::Fabric::Endpoint> ranks)
      : sim_(&sim), fabric_(&fabric), ranks_(std::move(ranks)) {}

  [[nodiscard]] std::size_t size() const { return ranks_.size(); }

  /// Point-to-point transfer of `bytes` between two ranks.
  [[nodiscard]] sim::Task<void> send(int from, int to, std::int64_t bytes);

  /// Slaves -> root gather of `bytes` each, then root -> slaves push of
  /// `bytes` each (Caffe-MPI parameter exchange for one iteration).
  [[nodiscard]] sim::Task<void> star_gather_scatter(int root, std::int64_t bytes);

  /// Ring allreduce of a `bytes`-sized buffer across all ranks.
  [[nodiscard]] sim::Task<void> ring_allreduce(std::int64_t bytes);

  /// Root pushes `bytes` to every other rank, concurrently.
  [[nodiscard]] sim::Task<void> broadcast(int root, std::int64_t bytes);

 private:
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  std::vector<net::Fabric::Endpoint> ranks_;
};

}  // namespace shmcaffe::minimpi
