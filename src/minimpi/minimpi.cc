#include "minimpi/minimpi.h"

#include <algorithm>
#include <cassert>

namespace shmcaffe::minimpi {
namespace {

// Collective-internal tags live far above any sane user tag.
constexpr int kCollectiveTagBase = 1 << 24;

std::vector<std::byte> floats_to_bytes(std::span<const float> values) {
  std::vector<std::byte> data(values.size_bytes());
  std::memcpy(data.data(), values.data(), values.size_bytes());
  return data;
}

}  // namespace

Context::Context(int size) : size_(size) {
  if (size < 1) throw MpiError("world size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  collective_counter_.assign(static_cast<std::size_t>(size), 0);
}

Endpoint Context::endpoint(int rank) {
  if (rank < 0 || rank >= size_) throw MpiError("rank out of range");
  return Endpoint(this, rank);
}

void Context::post(int to, Message message) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    std::scoped_lock lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

Context::Message Context::take(int at, int from, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(at)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(box.messages.begin(), box.messages.end(),
                                 [&](const Message& m) {
                                   return m.tag == tag &&
                                          (from == kAnySource || m.source == from);
                                 });
    if (it != box.messages.end()) {
      Message message = std::move(*it);
      box.messages.erase(it);
      return message;
    }
    box.cv.wait(lock);
  }
}

void Endpoint::send_bytes(int to, int tag, std::vector<std::byte> data) {
  if (to < 0 || to >= size()) throw MpiError("send to invalid rank");
  Context::Message message;
  message.source = rank_;
  message.tag = tag;
  message.data = std::move(data);
  context_->post(to, std::move(message));
}

std::vector<std::byte> Endpoint::recv_bytes(int from, int tag) {
  if (from != kAnySource && (from < 0 || from >= size())) {
    throw MpiError("recv from invalid rank");
  }
  return context_->take(rank_, from, tag).data;
}

void Endpoint::send_floats(int to, int tag, std::span<const float> values) {
  send_bytes(to, tag, floats_to_bytes(values));
}

void Endpoint::recv_floats(int from, int tag, std::span<float> dst) {
  const std::vector<std::byte> data = recv_bytes(from, tag);
  if (data.size() != dst.size_bytes()) throw MpiError("recv_floats size mismatch");
  std::memcpy(dst.data(), data.data(), data.size());
}

int Endpoint::next_collective_tag() {
  // Each collective gets a block of 8192 internal tags (a ring allreduce
  // uses 2(N-1) of them), so consecutive collectives never alias even when
  // neighbouring ranks race ahead.
  const std::uint64_t op = context_->collective_counter_[static_cast<std::size_t>(rank_)]++;
  return kCollectiveTagBase + static_cast<int>((op % (1 << 10)) * (1 << 13));
}

void Endpoint::barrier() {
  Context::BarrierState& b = context_->barrier_;
  std::unique_lock lock(b.mutex);
  const std::uint64_t generation = b.generation;
  if (++b.arrived == size()) {
    b.arrived = 0;
    ++b.generation;
    b.cv.notify_all();
  } else {
    b.cv.wait(lock, [&] { return b.generation != generation; });
  }
}

void Endpoint::broadcast(int root, std::span<float> data) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send_floats(r, tag, data);
    }
  } else {
    recv_floats(root, tag, data);
  }
}

void Endpoint::allreduce_sum(std::span<float> data) {
  const int n = size();
  if (n == 1) {
    (void)next_collective_tag();
    return;
  }
  // Ring allreduce: N-1 reduce-scatter steps, then N-1 allgather steps.
  // The vector is split into N chunks; chunk c has size chunk_size(c).
  const int tag_base = next_collective_tag();
  const std::size_t total = data.size();
  const std::size_t base = total / static_cast<std::size_t>(n);
  const std::size_t extra = total % static_cast<std::size_t>(n);
  auto chunk_begin = [&](int c) {
    const auto uc = static_cast<std::size_t>(c);
    return uc * base + std::min(uc, extra);
  };
  auto chunk_size = [&](int c) {
    return base + (static_cast<std::size_t>(c) < extra ? 1 : 0);
  };

  const int next = (rank_ + 1) % n;
  const int prev = (rank_ + n - 1) % n;
  std::vector<float> incoming;

  // Reduce-scatter: after step s, rank r holds the partial sum of chunk
  // (r - s + n) % n over s+1 contributions.
  for (int step = 0; step < n - 1; ++step) {
    const int send_chunk = (rank_ - step + n) % n;
    const int recv_chunk = (rank_ - step - 1 + n) % n;
    send_floats(next, tag_base + step,
                data.subspan(chunk_begin(send_chunk), chunk_size(send_chunk)));
    incoming.resize(chunk_size(recv_chunk));
    recv_floats(prev, tag_base + step, incoming);
    float* dst = data.data() + chunk_begin(recv_chunk);
    for (std::size_t i = 0; i < incoming.size(); ++i) dst[i] += incoming[i];
  }
  // Allgather: circulate the completed chunks.
  for (int step = 0; step < n - 1; ++step) {
    const int send_chunk = (rank_ + 1 - step + n) % n;
    const int recv_chunk = (rank_ - step + n) % n;
    send_floats(next, tag_base + (n - 1) + step,
                data.subspan(chunk_begin(send_chunk), chunk_size(send_chunk)));
    incoming.resize(chunk_size(recv_chunk));
    recv_floats(prev, tag_base + (n - 1) + step, incoming);
    std::copy(incoming.begin(), incoming.end(), data.begin() + static_cast<std::ptrdiff_t>(
                                                    chunk_begin(recv_chunk)));
  }
}

void Endpoint::reduce_sum(int root, std::span<float> data) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    std::vector<float> incoming(data.size());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_floats(r, tag, incoming);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
  } else {
    send_floats(root, tag, data);
  }
}

std::vector<float> Endpoint::gather(int root, std::span<const float> contribution) {
  const int tag = next_collective_tag();
  if (rank_ != root) {
    send_floats(root, tag, contribution);
    return {};
  }
  std::vector<float> result(contribution.size() * static_cast<std::size_t>(size()));
  std::copy(contribution.begin(), contribution.end(),
            result.begin() + static_cast<std::ptrdiff_t>(
                                 contribution.size() * static_cast<std::size_t>(rank_)));
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    recv_floats(r, tag,
                std::span<float>(result.data() + contribution.size() * static_cast<std::size_t>(r),
                                 contribution.size()));
  }
  return result;
}

}  // namespace shmcaffe::minimpi
