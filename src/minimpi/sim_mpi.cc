#include "minimpi/sim_mpi.h"

#include <cassert>

namespace shmcaffe::minimpi {

sim::Task<void> SimGroupOps::send(int from, int to, std::int64_t bytes) {
  assert(from >= 0 && static_cast<std::size_t>(from) < ranks_.size());
  assert(to >= 0 && static_cast<std::size_t>(to) < ranks_.size());
  return fabric_->transfer(ranks_[static_cast<std::size_t>(from)].tx,
                           ranks_[static_cast<std::size_t>(to)].rx, bytes);
}

sim::Task<void> SimGroupOps::star_gather_scatter(int root, std::int64_t bytes) {
  const int n = static_cast<int>(ranks_.size());
  // Gather: all slaves push concurrently into the root's rx link.
  std::vector<sim::Task<void>> inbound;
  for (int r = 0; r < n; ++r) {
    if (r != root) inbound.push_back(send(r, root, bytes));
  }
  co_await sim::when_all(*sim_, std::move(inbound));
  // Scatter: root pushes updated weights to every slave.
  std::vector<sim::Task<void>> outbound;
  for (int r = 0; r < n; ++r) {
    if (r != root) outbound.push_back(send(root, r, bytes));
  }
  co_await sim::when_all(*sim_, std::move(outbound));
}

sim::Task<void> SimGroupOps::ring_allreduce(std::int64_t bytes) {
  const int n = static_cast<int>(ranks_.size());
  if (n <= 1) co_return;
  const std::int64_t chunk = (bytes + n - 1) / n;
  // 2(N-1) synchronous steps; in each, every rank forwards one chunk to its
  // successor and all transfers must land before the next step starts.
  for (int step = 0; step < 2 * (n - 1); ++step) {
    std::vector<sim::Task<void>> transfers;
    transfers.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      transfers.push_back(send(r, (r + 1) % n, chunk));
    }
    co_await sim::when_all(*sim_, std::move(transfers));
  }
}

sim::Task<void> SimGroupOps::broadcast(int root, std::int64_t bytes) {
  std::vector<sim::Task<void>> transfers;
  for (int r = 0; r < static_cast<int>(ranks_.size()); ++r) {
    if (r != root) transfers.push_back(send(root, r, bytes));
  }
  co_await sim::when_all(*sim_, std::move(transfers));
}

}  // namespace shmcaffe::minimpi
