#include "dl/net.h"

#include <algorithm>
#include <stdexcept>

namespace shmcaffe::dl {

void Net::add_input(const std::string& blob_name) {
  if (blobs_.contains(blob_name)) {
    throw std::invalid_argument("blob already exists: " + blob_name);
  }
  blobs_[blob_name].is_input = true;
}

Layer& Net::add(std::unique_ptr<Layer> layer, std::vector<std::string> inputs,
                std::string output) {
  if (layer == nullptr) throw std::invalid_argument("null layer");
  for (const std::string& in : inputs) {
    if (!blobs_.contains(in)) {
      throw std::invalid_argument("layer '" + layer->name() + "' reads unknown blob: " + in);
    }
  }
  if (blobs_.contains(output)) {
    throw std::invalid_argument("output blob already exists: " + output);
  }
  blobs_[output];  // create
  Entry entry;
  entry.layer = std::move(layer);
  entry.inputs = std::move(inputs);
  entry.output = std::move(output);
  entries_.push_back(std::move(entry));
  return *entries_.back().layer;
}

Net::BlobRec& Net::blob_rec(const std::string& blob_name) {
  const auto it = blobs_.find(blob_name);
  if (it == blobs_.end()) throw std::invalid_argument("unknown blob: " + blob_name);
  return it->second;
}

const Net::BlobRec& Net::blob_rec(const std::string& blob_name) const {
  const auto it = blobs_.find(blob_name);
  if (it == blobs_.end()) throw std::invalid_argument("unknown blob: " + blob_name);
  return it->second;
}

Tensor& Net::input(const std::string& blob_name) {
  BlobRec& rec = blob_rec(blob_name);
  if (!rec.is_input) throw std::invalid_argument("not an input blob: " + blob_name);
  return rec.value;
}

const Tensor& Net::blob(const std::string& blob_name) const {
  return blob_rec(blob_name).value;
}

bool Net::has_blob(const std::string& blob_name) const { return blobs_.contains(blob_name); }

const Tensor& Net::forward(bool train) {
  if (entries_.empty()) throw std::logic_error("forward on an empty net");
  for (Entry& entry : entries_) {
    std::vector<const Tensor*> bottoms;
    bottoms.reserve(entry.inputs.size());
    std::vector<std::vector<int>> shapes;
    shapes.reserve(entry.inputs.size());
    for (const std::string& in : entry.inputs) {
      const Tensor& t = blob_rec(in).value;
      bottoms.push_back(&t);
      shapes.push_back(t.shape());
    }
    BlobRec& out = blob_rec(entry.output);
    if (shapes != entry.setup_shapes) {
      entry.layer->setup(bottoms, out.value);
      entry.setup_shapes = std::move(shapes);
    }
    entry.layer->forward(bottoms, out.value, train);
  }
  return blob_rec(entries_.back().output).value;
}

void Net::backward() {
  if (entries_.empty()) throw std::logic_error("backward on an empty net");
  // Zero activation gradients and size them to their values.
  for (auto& [name, rec] : blobs_) {
    if (!rec.grad.same_shape(rec.value)) {
      rec.grad.reshape(rec.value.shape());
    } else {
      rec.grad.zero();
    }
  }
  // Seed d(loss)/d(loss) = 1.
  BlobRec& loss = blob_rec(entries_.back().output);
  if (loss.value.size() != 1) {
    throw std::logic_error("backward requires a scalar loss top");
  }
  loss.grad[0] = 1.0F;

  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Entry& entry = *it;
    std::vector<const Tensor*> bottoms;
    std::vector<Tensor*> bottom_grads;
    bottoms.reserve(entry.inputs.size());
    bottom_grads.reserve(entry.inputs.size());
    for (const std::string& in : entry.inputs) {
      BlobRec& rec = blob_rec(in);
      bottoms.push_back(&rec.value);
      // External inputs (data, labels) receive no gradient.
      bottom_grads.push_back(rec.is_input ? nullptr : &rec.grad);
    }
    const BlobRec& out = blob_rec(entry.output);
    entry.layer->backward(bottoms, out.value, out.grad, bottom_grads);
  }
}

std::vector<ParamBlob*> Net::params() {
  std::vector<ParamBlob*> result;
  for (Entry& entry : entries_) {
    for (ParamBlob* blob : entry.layer->params()) result.push_back(blob);
  }
  return result;
}

std::size_t Net::param_count() {
  std::size_t total = 0;
  for (ParamBlob* blob : params()) total += blob->value.size();
  return total;
}

void Net::init_params(common::Rng& rng) {
  for (Entry& entry : entries_) entry.layer->init_params(rng);
}

void Net::zero_param_grads() {
  for (ParamBlob* blob : params()) blob->grad.zero();
}

std::vector<int> argmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("argmax_rows expects [N,K]");
  const int batch = logits.dim(0);
  const int classes = logits.dim(1);
  std::vector<int> result(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) {
    const float* row = logits.data() + static_cast<std::size_t>(n) * classes;
    result[static_cast<std::size_t>(n)] =
        static_cast<int>(std::max_element(row, row + classes) - row);
  }
  return result;
}

}  // namespace shmcaffe::dl
