#include "dl/solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shmcaffe::dl {

SgdSolver::SgdSolver(Net& net, SolverOptions options) : net_(&net), options_(options) {
  if (options_.base_lr <= 0.0) throw std::invalid_argument("base_lr must be positive");
  if (options_.momentum < 0.0 || options_.momentum >= 1.0) {
    throw std::invalid_argument("momentum must be in [0,1)");
  }
  for (ParamBlob* blob : net_->params()) {
    Tensor v;
    v.reshape(blob->value.shape());
    momentum_.push_back(std::move(v));
  }
}

double SgdSolver::learning_rate(int iteration) const {
  const SolverOptions& o = options_;
  switch (o.lr_policy) {
    case LrPolicy::kFixed:
      return o.base_lr;
    case LrPolicy::kStep:
      return o.base_lr * std::pow(o.gamma, iteration / o.step_size);
    case LrPolicy::kMultiStep: {
      int passed = 0;
      for (int boundary : o.step_values) {
        if (iteration >= boundary) ++passed;
      }
      return o.base_lr * std::pow(o.gamma, passed);
    }
    case LrPolicy::kExp:
      return o.base_lr * std::pow(o.gamma, iteration);
    case LrPolicy::kInv:
      return o.base_lr * std::pow(1.0 + o.gamma * iteration, -o.power);
    case LrPolicy::kPoly: {
      const double frac = std::min(1.0, static_cast<double>(iteration) / o.max_iter);
      return o.base_lr * std::pow(1.0 - frac, o.power);
    }
  }
  return o.base_lr;
}

void SgdSolver::apply_update(double lr) {
  const auto params = net_->params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    ParamBlob& blob = *params[p];
    if (!blob.learnable) continue;  // state blobs (BN running stats)
    Tensor& vel = momentum_[p];
    const auto mu = static_cast<float>(options_.momentum);
    const auto rate = static_cast<float>(lr);
    const auto decay = static_cast<float>(options_.weight_decay);
    float* w = blob.value.data();
    const float* g = blob.grad.data();
    float* v = vel.data();
    const std::size_t count = blob.value.size();
    for (std::size_t i = 0; i < count; ++i) {
      v[i] = mu * v[i] + rate * (g[i] + decay * w[i]);
      w[i] -= v[i];
    }
  }
}

void SgdSolver::step() {
  apply_update(learning_rate(iteration_));
  net_->zero_param_grads();
  ++iteration_;
}

std::vector<float> SgdSolver::momentum_state() const {
  std::vector<float> state;
  for (const Tensor& vel : momentum_) {
    state.insert(state.end(), vel.data(), vel.data() + vel.size());
  }
  return state;
}

void SgdSolver::set_momentum_state(const std::vector<float>& state) {
  std::size_t total = 0;
  for (const Tensor& vel : momentum_) total += vel.size();
  if (state.size() != total) {
    throw std::invalid_argument("momentum state size mismatch");
  }
  std::size_t offset = 0;
  for (Tensor& vel : momentum_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(offset),
              state.begin() + static_cast<std::ptrdiff_t>(offset + vel.size()), vel.data());
    offset += vel.size();
  }
}

}  // namespace shmcaffe::dl
