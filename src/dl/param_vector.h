// Flat-vector views over a net's parameters and gradients.
//
// The distributed trainers treat the whole parameter set as one contiguous
// float buffer (the layout of the SMB weight segments); these helpers copy
// between that layout and the net's per-layer ParamBlobs in deterministic
// (layer-insertion) order.
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "dl/net.h"

namespace shmcaffe::dl {

/// Copies every parameter value into `dst` (dst.size() == net.param_count()).
inline void copy_params_to(Net& net, std::span<float> dst) {
  std::size_t offset = 0;
  for (ParamBlob* blob : net.params()) {
    const auto src = blob->value.span();
    if (offset + src.size() > dst.size()) {
      throw std::invalid_argument("copy_params_to: destination too small");
    }
    std::copy(src.begin(), src.end(), dst.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += src.size();
  }
  if (offset != dst.size()) {
    throw std::invalid_argument("copy_params_to: destination size mismatch");
  }
}

/// Overwrites every parameter value from `src`.
inline void copy_params_from(Net& net, std::span<const float> src) {
  std::size_t offset = 0;
  for (ParamBlob* blob : net.params()) {
    auto dst = blob->value.span();
    if (offset + dst.size() > src.size()) {
      throw std::invalid_argument("copy_params_from: source too small");
    }
    std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(offset), dst.size(), dst.begin());
    offset += dst.size();
  }
  if (offset != src.size()) {
    throw std::invalid_argument("copy_params_from: source size mismatch");
  }
}

/// Copies every parameter gradient into `dst`.
inline void copy_grads_to(Net& net, std::span<float> dst) {
  std::size_t offset = 0;
  for (ParamBlob* blob : net.params()) {
    const auto src = blob->grad.span();
    if (offset + src.size() > dst.size()) {
      throw std::invalid_argument("copy_grads_to: destination too small");
    }
    std::copy(src.begin(), src.end(), dst.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += src.size();
  }
  if (offset != dst.size()) {
    throw std::invalid_argument("copy_grads_to: destination size mismatch");
  }
}

/// Overwrites every parameter gradient from `src`.
inline void copy_grads_from(Net& net, std::span<const float> src) {
  std::size_t offset = 0;
  for (ParamBlob* blob : net.params()) {
    auto dst = blob->grad.span();
    if (offset + dst.size() > src.size()) {
      throw std::invalid_argument("copy_grads_from: source too small");
    }
    std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(offset), dst.size(), dst.begin());
    offset += dst.size();
  }
  if (offset != src.size()) {
    throw std::invalid_argument("copy_grads_from: source size mismatch");
  }
}

/// Snapshot of all parameters as a fresh vector.
inline std::vector<float> params_snapshot(Net& net) {
  std::vector<float> flat(net.param_count());
  copy_params_to(net, flat);
  return flat;
}

}  // namespace shmcaffe::dl
