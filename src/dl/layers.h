// Concrete layers of the mini-Caffe library: convolution, pooling,
// activations, inner product, dropout, concat, residual add, and the fused
// softmax-cross-entropy loss.  All shapes are NCHW; FullyConnected flattens
// per sample.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/ordered_mutex.h"
#include "dl/layer.h"

namespace shmcaffe::dl {

/// Convolution compute engine: kDirect is the straightforward reference
/// implementation; kIm2colGemm lowers each sample to a column matrix and
/// runs the convolution as a matrix product (Caffe's strategy) — several
/// times faster on CPU and bit-compatible in shape, equivalent numerically
/// up to float association.  The GEMM engine is cache-block tiled over
/// (output channel, output position) and runs on the shared work pool
/// (common/parallel.h); its chunking is a pure function of the geometry, so
/// outputs and gradients are bitwise identical for every SHMCAFFE_THREADS.
enum class ConvEngine { kDirect, kIm2colGemm };

/// 2-D convolution with square kernel, stride and zero padding.
class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, int in_channels, int out_channels, int kernel, int stride = 1,
         int pad = 0, ConvEngine engine = ConvEngine::kIm2colGemm);

  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
  std::vector<ParamBlob*> params() override { return {&weight_, &bias_}; }
  void init_params(common::Rng& rng) override;

  /// Multiplies the MSRA initialisation's standard deviation.  0 zero-
  /// initialises the layer — used for the last convolution of residual
  /// branches so residual blocks start as identities and deep stacks train
  /// stably without normalisation.
  void set_init_scale(double scale) { init_scale_ = scale; }

 private:
  void forward_direct(const Tensor& x, Tensor& top);
  void backward_direct(const Tensor& x, const Tensor& top, const Tensor& top_grad,
                       Tensor* dx);
  SHMCAFFE_HOT_KERNEL void forward_gemm(const Tensor& x, Tensor& top);
  SHMCAFFE_HOT_KERNEL void backward_gemm(const Tensor& x, const Tensor& top,
                                         const Tensor& top_grad, Tensor* dx);
  SHMCAFFE_HOT_KERNEL void im2col(const Tensor& x, int sample, int oh, int ow);

  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  ConvEngine engine_;
  double init_scale_ = 1.0;
  ParamBlob weight_;          // [out, in, k, k]
  ParamBlob bias_;            // [out]
  /// Per-layer scratch, arena-backed: sized on first use and reused across
  /// calls (a layer's forward/backward never run concurrently with
  /// themselves), so steady-state iterations never touch the heap.  Owning
  /// allocations (not SMB views) living as long as the layer: a deliberate
  /// escape.
  common::arena::Buffer col_ SHMCAFFE_PIN_ESCAPE{"dl.conv.col"};    // im2col scratch
  common::arena::Buffer dcol_ SHMCAFFE_PIN_ESCAPE{"dl.conv.dcol"};  // backward col-grad scratch

};

/// Rectified linear unit, y = max(0, x).
class Relu final : public Layer {
 public:
  explicit Relu(std::string name) : Layer(std::move(name)) {}
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
};

/// Max pooling with square window.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, int kernel, int stride);
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;

 private:
  int kernel_;
  int stride_;
  std::vector<std::uint32_t> argmax_;  // flat bottom index per top element
};

/// Global average pooling: [N,C,H,W] -> [N,C,1,1].
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
};

/// Inner product (fully connected): flattens each sample to a feature vector.
class FullyConnected final : public Layer {
 public:
  FullyConnected(std::string name, int in_features, int out_features);
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
  std::vector<ParamBlob*> params() override { return {&weight_, &bias_}; }
  void init_params(common::Rng& rng) override;

 private:
  int in_features_;
  int out_features_;
  ParamBlob weight_;  // [out, in]
  ParamBlob bias_;    // [out]
};

/// Inverted dropout; identity at evaluation time.
class Dropout final : public Layer {
 public:
  Dropout(std::string name, double drop_probability, std::uint64_t seed = 0x0d20);
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;

 private:
  double drop_probability_;
  common::Rng rng_;
  std::vector<float> mask_;  // scale factor per element of the last forward
};

/// Channel-axis concatenation of rank-4 tensors with equal N, H, W.
class Concat final : public Layer {
 public:
  explicit Concat(std::string name) : Layer(std::move(name)) {}
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
};

/// Elementwise sum of equal-shaped bottoms (residual connections).
class EltwiseAdd final : public Layer {
 public:
  explicit EltwiseAdd(std::string name) : Layer(std::move(name)) {}
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
};

/// Fused softmax + cross-entropy loss.
/// Bottoms: {logits [N,K], labels [N] (class index stored as float)}.
/// Top: [1] holding the mean loss.  Backward ignores any incoming top_grad
/// scale other than using it as a multiplier (the net passes 1).
class SoftmaxCrossEntropy final : public Layer {
 public:
  explicit SoftmaxCrossEntropy(std::string name) : Layer(std::move(name)) {}
  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;

  /// Per-sample class probabilities of the last forward ([N,K]).
  [[nodiscard]] const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
};

}  // namespace shmcaffe::dl
