#include "dl/layers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/parallel.h"
#include "common/simd.h"

namespace shmcaffe::dl {
namespace {

void check(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

// Cache-block tile of the GEMM engine: each work item computes a
// kOcTile x kColTile block of the output into a stack-local accumulator
// (8 KiB), streaming the column matrix row by row.  Every output element
// belongs to exactly one tile and the reduction over the kk rows runs in
// ascending row order, so results are independent of the pool width.
constexpr int kOcTile = 8;
constexpr int kColTile = 256;
// im2col / dcol rows handed to one pool chunk.
constexpr std::size_t kRowGrain = 4;

int conv_out_extent(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// MSRA (He) initialisation for ReLU networks.
void msra_fill(Tensor& t, std::size_t fan_in, common::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : t.span()) v = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace

// --- Conv2d ---------------------------------------------------------------

Conv2d::Conv2d(std::string name, int in_channels, int out_channels, int kernel, int stride,
               int pad, ConvEngine engine)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      engine_(engine) {
  check(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 && pad >= 0,
        "Conv2d: invalid geometry");
  weight_.name = Layer::name() + ".weight";
  weight_.reshape({out_channels_, in_channels_, kernel_, kernel_});
  bias_.name = Layer::name() + ".bias";
  bias_.reshape({out_channels_});
}

void Conv2d::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "Conv2d: expects one bottom");
  const Tensor& x = *bottoms[0];
  check(x.rank() == 4, "Conv2d: bottom must be NCHW");
  check(x.c() == in_channels_, "Conv2d: channel mismatch");
  const int oh = conv_out_extent(x.h(), kernel_, stride_, pad_);
  const int ow = conv_out_extent(x.w(), kernel_, stride_, pad_);
  check(oh > 0 && ow > 0, "Conv2d: output would be empty");
  top.reshape({x.n(), out_channels_, oh, ow});
}

void Conv2d::init_params(common::Rng& rng) {
  msra_fill(weight_.value,
            static_cast<std::size_t>(in_channels_) * kernel_ * kernel_, rng);
  if (init_scale_ != 1.0) {
    for (float& v : weight_.value.span()) v *= static_cast<float>(init_scale_);
  }
  bias_.value.zero();
}

void Conv2d::forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool /*train*/) {
  if (engine_ == ConvEngine::kIm2colGemm) {
    forward_gemm(*bottoms[0], top);
  } else {
    forward_direct(*bottoms[0], top);
  }
}

void Conv2d::forward_direct(const Tensor& x, Tensor& top) {
  const int oh = top.h();
  const int ow = top.w();
  for (int n = 0; n < x.n(); ++n) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_.value[static_cast<std::size_t>(oc)];
      for (int y = 0; y < oh; ++y) {
        for (int xo = 0; xo < ow; ++xo) {
          float acc = b;
          for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = y * stride_ + ky - pad_;
              if (iy < 0 || iy >= x.h()) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = xo * stride_ + kx - pad_;
                if (ix < 0 || ix >= x.w()) continue;
                acc += weight_.value.at(oc, ic, ky, kx) * x.at(n, ic, iy, ix);
              }
            }
          }
          top.at(n, oc, y, xo) = acc;
        }
      }
    }
  }
}

void Conv2d::backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                      const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) {
  if (engine_ == ConvEngine::kIm2colGemm) {
    backward_gemm(*bottoms[0], top, top_grad, bottom_grads[0]);
  } else {
    backward_direct(*bottoms[0], top, top_grad, bottom_grads[0]);
  }
}

void Conv2d::backward_direct(const Tensor& x, const Tensor& top, const Tensor& top_grad,
                             Tensor* dx) {
  const int oh = top.h();
  const int ow = top.w();
  for (int n = 0; n < x.n(); ++n) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int xo = 0; xo < ow; ++xo) {
          const float g = top_grad.at(n, oc, y, xo);
          if (g == 0.0F) continue;
          bias_.grad[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = y * stride_ + ky - pad_;
              if (iy < 0 || iy >= x.h()) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = xo * stride_ + kx - pad_;
                if (ix < 0 || ix >= x.w()) continue;
                weight_.grad.at(oc, ic, ky, kx) += g * x.at(n, ic, iy, ix);
                if (dx != nullptr) {
                  dx->at(n, ic, iy, ix) += g * weight_.value.at(oc, ic, ky, kx);
                }
              }
            }
          }
        }
      }
    }
  }
}

void Conv2d::im2col(const Tensor& x, int sample, int oh, int ow) {
  // col_ layout: rows = (ic, ky, kx), columns = (y, xo).  The arena grows to
  // the layer's geometry once and is reused; rows are filled in parallel and
  // every element is written (padded positions get an explicit 0), so no
  // pre-zeroing pass over the whole matrix is needed.
  const int columns = oh * ow;
  const std::size_t rows = static_cast<std::size_t>(in_channels_) * kernel_ * kernel_;
  col_.ensure(rows * static_cast<std::size_t>(columns));
  common::parallel::parallel_for(rows, kRowGrain, [&](std::size_t rb, std::size_t re) {
    for (std::size_t row = rb; row < re; ++row) {
      const int ic = static_cast<int>(row) / (kernel_ * kernel_);
      const int rem = static_cast<int>(row) % (kernel_ * kernel_);
      const int ky = rem / kernel_;
      const int kx = rem % kernel_;
      float* dst = col_.data() + row * static_cast<std::size_t>(columns);
      for (int y = 0; y < oh; ++y) {
        const int iy = y * stride_ + ky - pad_;
        if (iy < 0 || iy >= x.h()) {
          std::fill(dst, dst + ow, 0.0F);
          dst += ow;
          continue;
        }
        for (int xo = 0; xo < ow; ++xo, ++dst) {
          const int ix = xo * stride_ + kx - pad_;
          *dst = (ix >= 0 && ix < x.w()) ? x.at(sample, ic, iy, ix) : 0.0F;
        }
      }
    }
  });
}

void Conv2d::forward_gemm(const Tensor& x, Tensor& top) {
  const int oh = top.h();
  const int ow = top.w();
  const int columns = oh * ow;
  const int kk = in_channels_ * kernel_ * kernel_;
  const float* w = weight_.value.data();  // [OC, kk]
  const std::size_t oc_tiles = (static_cast<std::size_t>(out_channels_) + kOcTile - 1) / kOcTile;
  const std::size_t col_tiles = (static_cast<std::size_t>(columns) + kColTile - 1) / kColTile;
  for (int n = 0; n < x.n(); ++n) {
    im2col(x, n, oh, ow);
    float* out = top.data() +
                 static_cast<std::size_t>(n) * out_channels_ * columns;
    const float* col = col_.data();
    common::parallel::parallel_for(
        oc_tiles * col_tiles, 1, [&](std::size_t tb, std::size_t te) {
          float acc[kOcTile][kColTile];
          for (std::size_t tile = tb; tile < te; ++tile) {
            const int oc0 = static_cast<int>(tile / col_tiles) * kOcTile;
            const int oc1 = std::min(oc0 + kOcTile, out_channels_);
            const int c0 = static_cast<int>(tile % col_tiles) * kColTile;
            const int c1 = std::min(c0 + kColTile, columns);
            const int ocn = oc1 - oc0;
            const int cn = c1 - c0;
            for (int i = 0; i < ocn; ++i) {
              std::fill(acc[i], acc[i] + cn,
                        bias_.value[static_cast<std::size_t>(oc0 + i)]);
            }
            if (ocn == kOcTile && cn == kColTile) {
              // Full tile: compile-time trip counts, accumulated by the
              // simd::axpy core (lane-independent, multiply and add kept
              // separate); same ascending-r float order as the general
              // path below and as the scalar-fallback build.
              for (int r = 0; r < kk; ++r) {
                const float* crow = col + static_cast<std::size_t>(r) * columns + c0;
                for (int i = 0; i < kOcTile; ++i) {
                  const float wv = w[static_cast<std::size_t>(oc0 + i) * kk + r];
                  common::simd::axpy(kColTile, wv, crow, acc[i]);
                }
              }
            } else {
              for (int r = 0; r < kk; ++r) {
                const float* crow = col + static_cast<std::size_t>(r) * columns + c0;
                for (int i = 0; i < ocn; ++i) {
                  const float wv = w[static_cast<std::size_t>(oc0 + i) * kk + r];
                  common::simd::axpy(static_cast<std::size_t>(cn), wv, crow, acc[i]);
                }
              }
            }
            for (int i = 0; i < ocn; ++i) {
              float* orow = out + static_cast<std::size_t>(oc0 + i) * columns + c0;
              std::copy(acc[i], acc[i] + cn, orow);
            }
          }
        });
  }
}

void Conv2d::backward_gemm(const Tensor& x, const Tensor& top, const Tensor& top_grad,
                           Tensor* dx) {
  const int oh = top.h();
  const int ow = top.w();
  const int columns = oh * ow;
  const int kk = in_channels_ * kernel_ * kernel_;
  const float* w = weight_.value.data();
  float* dw = weight_.grad.data();
  dcol_.ensure(static_cast<std::size_t>(kk) * columns);

  for (int n = 0; n < x.n(); ++n) {
    im2col(x, n, oh, ow);
    const float* gout = top_grad.data() +
                        static_cast<std::size_t>(n) * out_channels_ * columns;
    const float* col = col_.data();
    // dW += dY . col^T ; db += row-sums(dY).  Parallel over output channels:
    // each channel's bias and weight rows are written by exactly one chunk,
    // and every dot product reduces in ascending column order.
    common::parallel::parallel_for(
        static_cast<std::size_t>(out_channels_), 1, [&](std::size_t ob, std::size_t oe) {
          for (std::size_t oc = ob; oc < oe; ++oc) {
            const float* grow = gout + oc * columns;
            float bias_acc = 0.0F;
            for (int cidx = 0; cidx < columns; ++cidx) bias_acc += grow[cidx];
            bias_.grad[oc] += bias_acc;
            float* dwrow = dw + oc * kk;
            for (int r = 0; r < kk; ++r) {
              const float* crow = col + static_cast<std::size_t>(r) * columns;
              float acc = 0.0F;
              for (int cidx = 0; cidx < columns; ++cidx) acc += grow[cidx] * crow[cidx];
              dwrow[r] += acc;
            }
          }
        });
    if (dx == nullptr) continue;
    // dcol = W^T . dY, parallel over column-matrix rows; each row is owned by
    // one chunk and accumulates over output channels in ascending order.
    common::parallel::parallel_for(
        static_cast<std::size_t>(kk), kRowGrain, [&](std::size_t rb, std::size_t re) {
          for (std::size_t r = rb; r < re; ++r) {
            float* drow = dcol_.data() + r * static_cast<std::size_t>(columns);
            std::fill(drow, drow + columns, 0.0F);
            for (int oc = 0; oc < out_channels_; ++oc) {
              const float wv = w[static_cast<std::size_t>(oc) * kk + r];
              const float* grow = gout + static_cast<std::size_t>(oc) * columns;
              common::simd::axpy(static_cast<std::size_t>(columns), wv, grow, drow);
            }
          }
        });
    // col2im: scatter-add dcol back into dx.  Parallel over input channels —
    // rows of one channel touch only that channel's dx slice, so chunks
    // write disjoint memory.
    common::parallel::parallel_for(
        static_cast<std::size_t>(in_channels_), 1, [&](std::size_t ib, std::size_t ie) {
          for (std::size_t ic = ib; ic < ie; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              for (int kx = 0; kx < kernel_; ++kx) {
                const std::size_t row = (ic * kernel_ + ky) * kernel_ + kx;
                const float* drow = dcol_.data() + row * static_cast<std::size_t>(columns);
                for (int y = 0; y < oh; ++y) {
                  const int iy = y * stride_ + ky - pad_;
                  if (iy < 0 || iy >= x.h()) continue;
                  for (int xo = 0; xo < ow; ++xo) {
                    const int ix = xo * stride_ + kx - pad_;
                    if (ix >= 0 && ix < x.w()) {
                      dx->at(n, static_cast<int>(ic), iy, ix) += drow[y * ow + xo];
                    }
                  }
                }
              }
            }
          }
        });
  }
}

// --- Relu -------------------------------------------------------------------

void Relu::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "Relu: expects one bottom");
  top.reshape(bottoms[0]->shape());
}

void Relu::forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool /*train*/) {
  const Tensor& x = *bottoms[0];
  for (std::size_t i = 0; i < x.size(); ++i) top[i] = x[i] > 0.0F ? x[i] : 0.0F;
}

void Relu::backward(const std::vector<const Tensor*>& bottoms, const Tensor& /*top*/,
                    const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) {
  const Tensor& x = *bottoms[0];
  Tensor* dx = bottom_grads[0];
  if (dx == nullptr) return;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0F) (*dx)[i] += top_grad[i];
  }
}

// --- MaxPool2d ---------------------------------------------------------------

MaxPool2d::MaxPool2d(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  check(kernel > 0 && stride > 0, "MaxPool2d: invalid geometry");
}

void MaxPool2d::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "MaxPool2d: expects one bottom");
  const Tensor& x = *bottoms[0];
  check(x.rank() == 4, "MaxPool2d: bottom must be NCHW");
  const int oh = conv_out_extent(x.h(), kernel_, stride_, 0);
  const int ow = conv_out_extent(x.w(), kernel_, stride_, 0);
  check(oh > 0 && ow > 0, "MaxPool2d: output would be empty");
  top.reshape({x.n(), x.c(), oh, ow});
}

void MaxPool2d::forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                        bool /*train*/) {
  const Tensor& x = *bottoms[0];
  argmax_.assign(top.size(), 0);
  std::size_t out_index = 0;
  for (int n = 0; n < x.n(); ++n) {
    for (int c = 0; c < x.c(); ++c) {
      for (int y = 0; y < top.h(); ++y) {
        for (int xo = 0; xo < top.w(); ++xo) {
          float best = -std::numeric_limits<float>::infinity();
          std::uint32_t best_index = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = y * stride_ + ky;
            if (iy >= x.h()) break;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = xo * stride_ + kx;
              if (ix >= x.w()) break;
              const float v = x.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_index = static_cast<std::uint32_t>(
                    ((static_cast<std::size_t>(n) * x.c() + c) * x.h() + iy) * x.w() + ix);
              }
            }
          }
          top[out_index] = best;
          argmax_[out_index] = best_index;
          ++out_index;
        }
      }
    }
  }
}

void MaxPool2d::backward(const std::vector<const Tensor*>& /*bottoms*/, const Tensor& top,
                         const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) {
  Tensor* dx = bottom_grads[0];
  if (dx == nullptr) return;
  assert(argmax_.size() == top.size());
  (void)top;
  for (std::size_t i = 0; i < top_grad.size(); ++i) {
    (*dx)[argmax_[i]] += top_grad[i];
  }
}

// --- GlobalAvgPool ----------------------------------------------------------

void GlobalAvgPool::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "GlobalAvgPool: expects one bottom");
  const Tensor& x = *bottoms[0];
  check(x.rank() == 4, "GlobalAvgPool: bottom must be NCHW");
  top.reshape({x.n(), x.c(), 1, 1});
}

void GlobalAvgPool::forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                            bool /*train*/) {
  const Tensor& x = *bottoms[0];
  const float inv = 1.0F / static_cast<float>(x.h() * x.w());
  for (int n = 0; n < x.n(); ++n) {
    for (int c = 0; c < x.c(); ++c) {
      float acc = 0.0F;
      for (int y = 0; y < x.h(); ++y) {
        for (int xo = 0; xo < x.w(); ++xo) acc += x.at(n, c, y, xo);
      }
      top.at(n, c, 0, 0) = acc * inv;
    }
  }
}

void GlobalAvgPool::backward(const std::vector<const Tensor*>& bottoms, const Tensor& /*top*/,
                             const Tensor& top_grad,
                             const std::vector<Tensor*>& bottom_grads) {
  const Tensor& x = *bottoms[0];
  Tensor* dx = bottom_grads[0];
  if (dx == nullptr) return;
  const float inv = 1.0F / static_cast<float>(x.h() * x.w());
  for (int n = 0; n < x.n(); ++n) {
    for (int c = 0; c < x.c(); ++c) {
      const float g = top_grad.at(n, c, 0, 0) * inv;
      for (int y = 0; y < x.h(); ++y) {
        for (int xo = 0; xo < x.w(); ++xo) dx->at(n, c, y, xo) += g;
      }
    }
  }
}

// --- FullyConnected ----------------------------------------------------------

FullyConnected::FullyConnected(std::string name, int in_features, int out_features)
    : Layer(std::move(name)), in_features_(in_features), out_features_(out_features) {
  check(in_features > 0 && out_features > 0, "FullyConnected: invalid sizes");
  weight_.name = Layer::name() + ".weight";
  weight_.reshape({out_features_, in_features_});
  bias_.name = Layer::name() + ".bias";
  bias_.reshape({out_features_});
}

void FullyConnected::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "FullyConnected: expects one bottom");
  const Tensor& x = *bottoms[0];
  check(x.rank() >= 2, "FullyConnected: bottom needs a batch axis");
  const auto features = static_cast<int>(x.size()) / x.dim(0);
  check(features == in_features_, "FullyConnected: feature count mismatch");
  top.reshape({x.dim(0), out_features_});
}

void FullyConnected::init_params(common::Rng& rng) {
  msra_fill(weight_.value, static_cast<std::size_t>(in_features_), rng);
  bias_.value.zero();
}

void FullyConnected::forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                             bool /*train*/) {
  const Tensor& x = *bottoms[0];
  const int batch = x.dim(0);
  const float* in = x.data();
  float* out = top.data();
  const float* w = weight_.value.data();
  for (int n = 0; n < batch; ++n) {
    const float* xn = in + static_cast<std::size_t>(n) * in_features_;
    float* yn = out + static_cast<std::size_t>(n) * out_features_;
    for (int o = 0; o < out_features_; ++o) {
      const float* wrow = w + static_cast<std::size_t>(o) * in_features_;
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_features_; ++i) acc += wrow[i] * xn[i];
      yn[o] = acc;
    }
  }
}

void FullyConnected::backward(const std::vector<const Tensor*>& bottoms, const Tensor& /*top*/,
                              const Tensor& top_grad,
                              const std::vector<Tensor*>& bottom_grads) {
  const Tensor& x = *bottoms[0];
  Tensor* dx = bottom_grads[0];
  const int batch = x.dim(0);
  const float* in = x.data();
  const float* w = weight_.value.data();
  float* dw = weight_.grad.data();
  for (int n = 0; n < batch; ++n) {
    const float* xn = in + static_cast<std::size_t>(n) * in_features_;
    const float* gn = top_grad.data() + static_cast<std::size_t>(n) * out_features_;
    for (int o = 0; o < out_features_; ++o) {
      const float g = gn[o];
      if (g == 0.0F) continue;
      bias_.grad[static_cast<std::size_t>(o)] += g;
      float* dwrow = dw + static_cast<std::size_t>(o) * in_features_;
      for (int i = 0; i < in_features_; ++i) dwrow[i] += g * xn[i];
      if (dx != nullptr) {
        float* dxn = dx->data() + static_cast<std::size_t>(n) * in_features_;
        const float* wrow = w + static_cast<std::size_t>(o) * in_features_;
        for (int i = 0; i < in_features_; ++i) dxn[i] += g * wrow[i];
      }
    }
  }
}

// --- Dropout ------------------------------------------------------------------

Dropout::Dropout(std::string name, double drop_probability, std::uint64_t seed)
    : Layer(std::move(name)), drop_probability_(drop_probability), rng_(seed) {
  check(drop_probability >= 0.0 && drop_probability < 1.0, "Dropout: p must be in [0,1)");
}

void Dropout::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "Dropout: expects one bottom");
  top.reshape(bottoms[0]->shape());
}

void Dropout::forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) {
  const Tensor& x = *bottoms[0];
  if (!train || drop_probability_ == 0.0) {
    std::copy(x.span().begin(), x.span().end(), top.span().begin());
    mask_.assign(x.size(), 1.0F);
    return;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - drop_probability_));
  mask_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    mask_[i] = rng_.chance(drop_probability_) ? 0.0F : keep_scale;
    top[i] = x[i] * mask_[i];
  }
}

void Dropout::backward(const std::vector<const Tensor*>& /*bottoms*/, const Tensor& /*top*/,
                       const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) {
  Tensor* dx = bottom_grads[0];
  if (dx == nullptr) return;
  assert(mask_.size() == top_grad.size());
  for (std::size_t i = 0; i < top_grad.size(); ++i) (*dx)[i] += top_grad[i] * mask_[i];
}

// --- Concat --------------------------------------------------------------------

void Concat::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(!bottoms.empty(), "Concat: needs at least one bottom");
  const Tensor& first = *bottoms[0];
  check(first.rank() == 4, "Concat: bottoms must be NCHW");
  int channels = 0;
  for (const Tensor* b : bottoms) {
    check(b->rank() == 4 && b->n() == first.n() && b->h() == first.h() && b->w() == first.w(),
          "Concat: mismatched bottom geometry");
    channels += b->c();
  }
  top.reshape({first.n(), channels, first.h(), first.w()});
}

void Concat::forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool /*train*/) {
  const int n_total = top.n();
  for (int n = 0; n < n_total; ++n) {
    int c_off = 0;
    for (const Tensor* b : bottoms) {
      for (int c = 0; c < b->c(); ++c) {
        for (int y = 0; y < b->h(); ++y) {
          for (int x = 0; x < b->w(); ++x) {
            top.at(n, c_off + c, y, x) = b->at(n, c, y, x);
          }
        }
      }
      c_off += b->c();
    }
  }
}

void Concat::backward(const std::vector<const Tensor*>& bottoms, const Tensor& /*top*/,
                      const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) {
  const int n_total = top_grad.n();
  for (int n = 0; n < n_total; ++n) {
    int c_off = 0;
    for (std::size_t bi = 0; bi < bottoms.size(); ++bi) {
      const Tensor& b = *bottoms[bi];
      Tensor* dx = bottom_grads[bi];
      if (dx != nullptr) {
        for (int c = 0; c < b.c(); ++c) {
          for (int y = 0; y < b.h(); ++y) {
            for (int x = 0; x < b.w(); ++x) {
              dx->at(n, c, y, x) += top_grad.at(n, c_off + c, y, x);
            }
          }
        }
      }
      c_off += b.c();
    }
  }
}

// --- EltwiseAdd -------------------------------------------------------------------

void EltwiseAdd::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() >= 2, "EltwiseAdd: needs at least two bottoms");
  for (const Tensor* b : bottoms) {
    check(b->same_shape(*bottoms[0]), "EltwiseAdd: mismatched shapes");
  }
  top.reshape(bottoms[0]->shape());
}

void EltwiseAdd::forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                         bool /*train*/) {
  top.zero();
  for (const Tensor* b : bottoms) {
    for (std::size_t i = 0; i < top.size(); ++i) top[i] += (*b)[i];
  }
}

void EltwiseAdd::backward(const std::vector<const Tensor*>& /*bottoms*/, const Tensor& /*top*/,
                          const Tensor& top_grad,
                          const std::vector<Tensor*>& bottom_grads) {
  for (Tensor* dx : bottom_grads) {
    if (dx == nullptr) continue;
    for (std::size_t i = 0; i < top_grad.size(); ++i) (*dx)[i] += top_grad[i];
  }
}

// --- SoftmaxCrossEntropy ------------------------------------------------------------

void SoftmaxCrossEntropy::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 2, "SoftmaxCrossEntropy: expects {logits, labels}");
  const Tensor& logits = *bottoms[0];
  const Tensor& labels = *bottoms[1];
  check(logits.rank() == 2, "SoftmaxCrossEntropy: logits must be [N,K]");
  check(labels.size() == static_cast<std::size_t>(logits.dim(0)),
        "SoftmaxCrossEntropy: one label per sample");
  top.reshape({1});
}

void SoftmaxCrossEntropy::forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                                  bool /*train*/) {
  const Tensor& logits = *bottoms[0];
  const Tensor& labels = *bottoms[1];
  const int batch = logits.dim(0);
  const int classes = logits.dim(1);
  probs_.reshape({batch, classes});
  double loss = 0.0;
  for (int n = 0; n < batch; ++n) {
    const float* row = logits.data() + static_cast<std::size_t>(n) * classes;
    float* prow = probs_.data() + static_cast<std::size_t>(n) * classes;
    const float maxv = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (int k = 0; k < classes; ++k) {
      prow[k] = std::exp(row[k] - maxv);
      denom += prow[k];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (int k = 0; k < classes; ++k) prow[k] *= inv;
    const int label = static_cast<int>(labels[static_cast<std::size_t>(n)]);
    check(label >= 0 && label < classes, "SoftmaxCrossEntropy: label out of range");
    loss -= std::log(std::max(static_cast<double>(prow[label]), 1e-12));
  }
  top[0] = static_cast<float>(loss / batch);
}

void SoftmaxCrossEntropy::backward(const std::vector<const Tensor*>& bottoms,
                                   const Tensor& /*top*/, const Tensor& top_grad,
                                   const std::vector<Tensor*>& bottom_grads) {
  const Tensor& labels = *bottoms[1];
  Tensor* dlogits = bottom_grads[0];
  if (dlogits == nullptr) return;
  const int batch = probs_.dim(0);
  const int classes = probs_.dim(1);
  const float scale = top_grad[0] / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const float* prow = probs_.data() + static_cast<std::size_t>(n) * classes;
    float* grow = dlogits->data() + static_cast<std::size_t>(n) * classes;
    const int label = static_cast<int>(labels[static_cast<std::size_t>(n)]);
    for (int k = 0; k < classes; ++k) {
      grow[k] += scale * (prow[k] - (k == label ? 1.0F : 0.0F));
    }
  }
}

}  // namespace shmcaffe::dl
