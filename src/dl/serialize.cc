#include "dl/serialize.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace shmcaffe::dl {
namespace {

constexpr std::uint32_t kMagic = 0x31'4d'43'53;  // "SCM1"

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* begin = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), begin, begin + sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::byte>& in) {
  if (in.size() < sizeof(T)) throw std::invalid_argument("snapshot truncated");
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}

}  // namespace

std::vector<std::byte> save_snapshot(Net& net) {
  const auto params = net.params();
  std::vector<std::byte> out;
  append_pod(out, kMagic);
  append_pod(out, static_cast<std::uint32_t>(params.size()));
  for (ParamBlob* blob : params) {
    append_pod(out, static_cast<std::uint32_t>(blob->name.size()));
    const auto* name = reinterpret_cast<const std::byte*>(blob->name.data());
    out.insert(out.end(), name, name + blob->name.size());
    append_pod(out, static_cast<std::uint32_t>(blob->value.rank()));
    for (std::size_t axis = 0; axis < blob->value.rank(); ++axis) {
      append_pod(out, static_cast<std::int32_t>(blob->value.dim(axis)));
    }
    const auto* data = reinterpret_cast<const std::byte*>(blob->value.data());
    out.insert(out.end(), data, data + blob->value.size() * sizeof(float));
  }
  return out;
}

void load_snapshot(Net& net, std::span<const std::byte> snapshot) {
  if (read_pod<std::uint32_t>(snapshot) != kMagic) {
    throw std::invalid_argument("snapshot: bad magic");
  }
  const auto params = net.params();
  const auto blob_count = read_pod<std::uint32_t>(snapshot);
  if (blob_count != params.size()) {
    throw std::invalid_argument("snapshot: parameter blob count mismatch");
  }
  // Two-phase restore: validate the whole snapshot (every field bounds-
  // checked, every name/shape matched) and stage the source ranges first;
  // only a fully well-formed snapshot mutates the net, so a truncated or
  // corrupted one can never leave it half-restored.
  std::vector<const std::byte*> staged;
  staged.reserve(params.size());
  for (ParamBlob* blob : params) {
    const auto name_length = read_pod<std::uint32_t>(snapshot);
    if (snapshot.size() < name_length) throw std::invalid_argument("snapshot truncated");
    const std::string name(reinterpret_cast<const char*>(snapshot.data()), name_length);
    snapshot = snapshot.subspan(name_length);
    if (name != blob->name) {
      throw std::invalid_argument("snapshot: blob name mismatch: expected '" + blob->name +
                                  "', found '" + name + "'");
    }
    const auto rank = read_pod<std::uint32_t>(snapshot);
    if (rank != blob->value.rank()) {
      throw std::invalid_argument("snapshot: rank mismatch for " + name);
    }
    for (std::size_t axis = 0; axis < rank; ++axis) {
      if (read_pod<std::int32_t>(snapshot) != blob->value.dim(axis)) {
        throw std::invalid_argument("snapshot: shape mismatch for " + name);
      }
    }
    const std::size_t bytes = blob->value.size() * sizeof(float);
    if (snapshot.size() < bytes) throw std::invalid_argument("snapshot truncated");
    staged.push_back(snapshot.data());
    snapshot = snapshot.subspan(bytes);
  }
  if (!snapshot.empty()) {
    throw std::invalid_argument("snapshot: trailing bytes");
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    std::memcpy(params[p]->value.data(), staged[p],
                params[p]->value.size() * sizeof(float));
  }
}

void save_snapshot_file(Net& net, const std::string& path) {
  const std::vector<std::byte> data = save_snapshot(net);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

void load_snapshot_file(Net& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) throw std::runtime_error("cannot size: " + path);
  in.seekg(0);
  std::vector<std::byte> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw std::runtime_error("read failed: " + path);
  load_snapshot(net, data);
}

}  // namespace shmcaffe::dl
