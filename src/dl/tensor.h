// Dense float tensor (NCHW for images), the data type of the mini-Caffe
// library.  Contiguous row-major storage, explicit shapes, no view/stride
// machinery — layers index directly.
#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

namespace shmcaffe::dl {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) { reshape(std::move(shape)); }

  void reshape(std::vector<int> shape) {
    shape_ = std::move(shape);
    std::size_t total = 1;
    for (int d : shape_) {
      assert(d > 0);
      total *= static_cast<std::size_t>(d);
    }
    data_.assign(shape_.empty() ? 0 : total, 0.0F);
  }

  /// Reshape preserving contents; the element count must match.
  void reshape_keep(std::vector<int> shape) {
    std::size_t total = 1;
    for (int d : shape) total *= static_cast<std::size_t>(d);
    assert(total == data_.size());
    shape_ = std::move(shape);
  }

  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] int dim(std::size_t axis) const {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  // NCHW accessors (valid for rank-4 tensors).
  [[nodiscard]] int n() const { return dim(0); }
  [[nodiscard]] int c() const { return dim(1); }
  [[nodiscard]] int h() const { return dim(2); }
  [[nodiscard]] int w() const { return dim(3); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> span() { return data_; }
  [[nodiscard]] std::span<const float> span() const { return data_; }

  [[nodiscard]] float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// Element (n, c, h, w) of a rank-4 tensor.
  [[nodiscard]] float& at(int in, int ic, int ih, int iw) {
    return data_[offset(in, ic, ih, iw)];
  }
  [[nodiscard]] float at(int in, int ic, int ih, int iw) const {
    return data_[offset(in, ic, ih, iw)];
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  void zero() { fill(0.0F); }

  [[nodiscard]] bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  [[nodiscard]] std::size_t offset(int in, int ic, int ih, int iw) const {
    assert(rank() == 4);
    assert(in >= 0 && in < n() && ic >= 0 && ic < c());
    assert(ih >= 0 && ih < h() && iw >= 0 && iw < w());
    return ((static_cast<std::size_t>(in) * static_cast<std::size_t>(c()) +
             static_cast<std::size_t>(ic)) *
                static_cast<std::size_t>(h()) +
            static_cast<std::size_t>(ih)) *
               static_cast<std::size_t>(w()) +
           static_cast<std::size_t>(iw);
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace shmcaffe::dl
