// Layer interface of the mini-Caffe library.
//
// A layer consumes one or more bottom tensors and produces exactly one top
// tensor.  Learnable parameters live in ParamBlobs (value + gradient pair)
// owned by the layer.  Backward-pass contract:
//
//   * the net zeroes all activation gradients before backward;
//   * backward() ACCUMULATES (+=) into bottom gradients, so a blob consumed
//     by several layers (inception branches) collects all contributions;
//   * parameter gradients are also accumulated; the solver zeroes them after
//     each update.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dl/tensor.h"

namespace shmcaffe::dl {

/// A parameter: value and gradient of identical shape.  `learnable = false`
/// marks state blobs (batch-norm running statistics) that are shared and
/// serialised with the model but never touched by the solver.
struct ParamBlob {
  std::string name;
  Tensor value;
  Tensor grad;
  bool learnable = true;

  void reshape(std::vector<int> shape) {
    value.reshape(shape);
    grad.reshape(std::move(shape));
  }
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Validates bottom shapes and shapes `top` (and parameters on first call).
  virtual void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) = 0;

  /// Computes top from bottoms.  `train` toggles train-time behaviour
  /// (dropout).
  virtual void forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                       bool train) = 0;

  /// Accumulates gradients: given d(loss)/d(top) in `top_grad`, adds
  /// d(loss)/d(bottom_i) into `bottom_grads[i]` and d(loss)/d(param) into the
  /// layer's ParamBlobs.  `top` holds the forward result (layers may reuse
  /// cached state from the last forward call).
  virtual void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                        const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) = 0;

  /// Learnable parameters (empty for stateless layers).
  [[nodiscard]] virtual std::vector<ParamBlob*> params() { return {}; }

  /// Initialises parameters (no-op for stateless layers).
  virtual void init_params(common::Rng& /*rng*/) {}

 private:
  std::string name_;
};

}  // namespace shmcaffe::dl
