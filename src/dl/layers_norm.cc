#include "dl/layers_norm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace shmcaffe::dl {
namespace {

void check(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace

// --- BatchNorm ---------------------------------------------------------------

BatchNorm::BatchNorm(std::string name, int channels, double momentum, double epsilon)
    : Layer(std::move(name)), channels_(channels), momentum_(momentum), epsilon_(epsilon) {
  check(channels > 0, "BatchNorm: channels must be positive");
  check(momentum >= 0.0 && momentum < 1.0, "BatchNorm: momentum in [0,1)");
  check(epsilon > 0.0, "BatchNorm: epsilon must be positive");
  scale_.name = Layer::name() + ".scale";
  scale_.reshape({channels_});
  shift_.name = Layer::name() + ".shift";
  shift_.reshape({channels_});
  running_mean_.name = Layer::name() + ".running_mean";
  running_mean_.reshape({channels_});
  running_mean_.learnable = false;
  running_var_.name = Layer::name() + ".running_var";
  running_var_.reshape({channels_});
  running_var_.learnable = false;
}

void BatchNorm::init_params(common::Rng& /*rng*/) {
  scale_.value.fill(1.0F);
  shift_.value.zero();
  running_mean_.value.zero();
  running_var_.value.fill(1.0F);
}

void BatchNorm::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "BatchNorm: expects one bottom");
  const Tensor& x = *bottoms[0];
  check(x.rank() == 4, "BatchNorm: bottom must be NCHW");
  check(x.c() == channels_, "BatchNorm: channel mismatch");
  top.reshape(x.shape());
}

void BatchNorm::forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) {
  const Tensor& x = *bottoms[0];
  const int n = x.n();
  const int h = x.h();
  const int w = x.w();
  const auto per_channel = static_cast<double>(n) * h * w;
  normalized_.reshape(x.shape());
  batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0F);
  batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0F);

  for (int c = 0; c < channels_; ++c) {
    double mean = 0.0;
    double variance = 0.0;
    if (train) {
      for (int in = 0; in < n; ++in) {
        for (int y = 0; y < h; ++y) {
          for (int xw = 0; xw < w; ++xw) mean += x.at(in, c, y, xw);
        }
      }
      mean /= per_channel;
      for (int in = 0; in < n; ++in) {
        for (int y = 0; y < h; ++y) {
          for (int xw = 0; xw < w; ++xw) {
            const double d = x.at(in, c, y, xw) - mean;
            variance += d * d;
          }
        }
      }
      variance /= per_channel;  // biased, like cuDNN/Caffe forward
      auto& rm = running_mean_.value[static_cast<std::size_t>(c)];
      auto& rv = running_var_.value[static_cast<std::size_t>(c)];
      rm = static_cast<float>(momentum_ * rm + (1.0 - momentum_) * mean);
      rv = static_cast<float>(momentum_ * rv + (1.0 - momentum_) * variance);
    } else {
      mean = running_mean_.value[static_cast<std::size_t>(c)];
      variance = running_var_.value[static_cast<std::size_t>(c)];
    }
    const double inv_std = 1.0 / std::sqrt(variance + epsilon_);
    batch_mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(c)] = static_cast<float>(inv_std);
    const float gamma = scale_.value[static_cast<std::size_t>(c)];
    const float beta = shift_.value[static_cast<std::size_t>(c)];
    for (int in = 0; in < n; ++in) {
      for (int y = 0; y < h; ++y) {
        for (int xw = 0; xw < w; ++xw) {
          const float xhat = static_cast<float>((x.at(in, c, y, xw) - mean) * inv_std);
          normalized_.at(in, c, y, xw) = xhat;
          top.at(in, c, y, xw) = gamma * xhat + beta;
        }
      }
    }
  }
}

void BatchNorm::backward(const std::vector<const Tensor*>& bottoms, const Tensor& /*top*/,
                         const Tensor& top_grad,
                         const std::vector<Tensor*>& bottom_grads) {
  const Tensor& x = *bottoms[0];
  Tensor* dx = bottom_grads[0];
  const int n = x.n();
  const int h = x.h();
  const int w = x.w();
  const auto per_channel = static_cast<double>(n) * h * w;

  for (int c = 0; c < channels_; ++c) {
    // Reductions: sum(dy), sum(dy * xhat).
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int in = 0; in < n; ++in) {
      for (int y = 0; y < h; ++y) {
        for (int xw = 0; xw < w; ++xw) {
          const double dy = top_grad.at(in, c, y, xw);
          sum_dy += dy;
          sum_dy_xhat += dy * normalized_.at(in, c, y, xw);
        }
      }
    }
    shift_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
    scale_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);
    if (dx == nullptr) continue;
    const double gamma = scale_.value[static_cast<std::size_t>(c)];
    const double inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const double mean_dy = sum_dy / per_channel;
    const double mean_dy_xhat = sum_dy_xhat / per_channel;
    for (int in = 0; in < n; ++in) {
      for (int y = 0; y < h; ++y) {
        for (int xw = 0; xw < w; ++xw) {
          const double dy = top_grad.at(in, c, y, xw);
          const double xhat = normalized_.at(in, c, y, xw);
          dx->at(in, c, y, xw) += static_cast<float>(
              gamma * inv_std * (dy - mean_dy - xhat * mean_dy_xhat));
        }
      }
    }
  }
}

// --- Lrn --------------------------------------------------------------------

Lrn::Lrn(std::string name, int local_size, double alpha, double beta, double k)
    : Layer(std::move(name)), local_size_(local_size), alpha_(alpha), beta_(beta), k_(k) {
  check(local_size >= 1 && local_size % 2 == 1, "Lrn: local_size must be odd and >= 1");
  check(alpha > 0.0 && beta > 0.0 && k > 0.0, "Lrn: alpha, beta, k must be positive");
}

void Lrn::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "Lrn: expects one bottom");
  check(bottoms[0]->rank() == 4, "Lrn: bottom must be NCHW");
  top.reshape(bottoms[0]->shape());
}

void Lrn::forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool /*train*/) {
  const Tensor& x = *bottoms[0];
  denom_.reshape(x.shape());
  const int half = local_size_ / 2;
  const double scale = alpha_ / local_size_;
  for (int n = 0; n < x.n(); ++n) {
    for (int y = 0; y < x.h(); ++y) {
      for (int xw = 0; xw < x.w(); ++xw) {
        for (int c = 0; c < x.c(); ++c) {
          double acc = 0.0;
          const int lo = std::max(0, c - half);
          const int hi = std::min(x.c() - 1, c + half);
          for (int j = lo; j <= hi; ++j) {
            const double v = x.at(n, j, y, xw);
            acc += v * v;
          }
          const double denom = k_ + scale * acc;
          denom_.at(n, c, y, xw) = static_cast<float>(denom);
          top.at(n, c, y, xw) =
              static_cast<float>(x.at(n, c, y, xw) * std::pow(denom, -beta_));
        }
      }
    }
  }
}

void Lrn::backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                   const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) {
  const Tensor& x = *bottoms[0];
  Tensor* dx = bottom_grads[0];
  if (dx == nullptr) return;
  const int half = local_size_ / 2;
  const double scale = alpha_ / local_size_;
  // dx_i = dy_i * denom_i^-beta
  //        - 2*beta*scale * x_i * sum_{j : i in window(j)} dy_j * y_j / denom_j
  for (int n = 0; n < x.n(); ++n) {
    for (int y = 0; y < x.h(); ++y) {
      for (int xw = 0; xw < x.w(); ++xw) {
        for (int c = 0; c < x.c(); ++c) {
          const double direct =
              top_grad.at(n, c, y, xw) * std::pow(denom_.at(n, c, y, xw), -beta_);
          double cross = 0.0;
          const int lo = std::max(0, c - half);
          const int hi = std::min(x.c() - 1, c + half);
          for (int j = lo; j <= hi; ++j) {
            cross += top_grad.at(n, j, y, xw) * top.at(n, j, y, xw) /
                     denom_.at(n, j, y, xw);
          }
          dx->at(n, c, y, xw) += static_cast<float>(
              direct - 2.0 * beta_ * scale * x.at(n, c, y, xw) * cross);
        }
      }
    }
  }
}

// --- AvgPool2d ----------------------------------------------------------------

AvgPool2d::AvgPool2d(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  check(kernel > 0 && stride > 0, "AvgPool2d: invalid geometry");
}

void AvgPool2d::setup(const std::vector<const Tensor*>& bottoms, Tensor& top) {
  check(bottoms.size() == 1, "AvgPool2d: expects one bottom");
  const Tensor& x = *bottoms[0];
  check(x.rank() == 4, "AvgPool2d: bottom must be NCHW");
  const int oh = (x.h() - kernel_) / stride_ + 1;
  const int ow = (x.w() - kernel_) / stride_ + 1;
  check(oh > 0 && ow > 0, "AvgPool2d: output would be empty");
  top.reshape({x.n(), x.c(), oh, ow});
}

void AvgPool2d::forward(const std::vector<const Tensor*>& bottoms, Tensor& top,
                        bool /*train*/) {
  const Tensor& x = *bottoms[0];
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  for (int n = 0; n < x.n(); ++n) {
    for (int c = 0; c < x.c(); ++c) {
      for (int y = 0; y < top.h(); ++y) {
        for (int xw = 0; xw < top.w(); ++xw) {
          float acc = 0.0F;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              acc += x.at(n, c, y * stride_ + ky, xw * stride_ + kx);
            }
          }
          top.at(n, c, y, xw) = acc * inv;
        }
      }
    }
  }
}

void AvgPool2d::backward(const std::vector<const Tensor*>& /*bottoms*/, const Tensor& top,
                         const Tensor& top_grad,
                         const std::vector<Tensor*>& bottom_grads) {
  Tensor* dx = bottom_grads[0];
  if (dx == nullptr) return;
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  for (int n = 0; n < top.n(); ++n) {
    for (int c = 0; c < top.c(); ++c) {
      for (int y = 0; y < top.h(); ++y) {
        for (int xw = 0; xw < top.w(); ++xw) {
          const float g = top_grad.at(n, c, y, xw) * inv;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              dx->at(n, c, y * stride_ + ky, xw * stride_ + kx) += g;
            }
          }
        }
      }
    }
  }
}

}  // namespace shmcaffe::dl
