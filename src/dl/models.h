// Model zoo: miniature versions of the paper's four CNN families, sized for
// the synthetic dataset (NxCx16x16 inputs by default).
//
// Functional convergence experiments train these; the *real* models'
// parameter sizes and iteration times enter the timing simulation as cost
// profiles in src/cluster (see cluster/model_profiles.h).
//
// Every model has external inputs "data" ([N,C,H,W]) and "label" ([N]),
// exposes its class scores as blob "logits", and ends in a
// SoftmaxCrossEntropy layer producing the scalar blob "loss".
#pragma once

#include <string>

#include "dl/net.h"

namespace shmcaffe::dl {

struct ModelInputSpec {
  int channels = 3;
  int height = 16;
  int width = 16;
  int classes = 8;
};

/// Two-hidden-layer perceptron (smoke tests and fast unit tests).
Net make_mlp(const ModelInputSpec& spec, int hidden = 64);

/// VGG-style stack: parameter-heavy (large FC head), moderate compute.
Net make_mini_vgg(const ModelInputSpec& spec);

/// GoogLeNet/Inception-v1-style: two inception blocks (1x1 / 1x1-3x3 /
/// 1x1-3x3-3x3 branches), global average pooling; parameter-light.
Net make_mini_inception(const ModelInputSpec& spec);

/// ResNet-style: residual blocks with identity shortcuts.
Net make_mini_resnet(const ModelInputSpec& spec);

/// Inception-ResNet-v2-style: inception blocks inside residual connections,
/// with batch normalisation in the stem and LRN after it (the paper's
/// fourth and largest CNN family).
Net make_mini_inception_resnet(const ModelInputSpec& spec);

/// Factory by family name: "mlp", "mini_vgg", "mini_inception",
/// "mini_resnet", "mini_inception_resnet".  Throws std::invalid_argument
/// for unknown names.
Net make_model(const std::string& family, const ModelInputSpec& spec);

}  // namespace shmcaffe::dl
