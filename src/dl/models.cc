#include "dl/models.h"

#include <memory>
#include <stdexcept>

#include "dl/layers.h"
#include "dl/layers_norm.h"

namespace shmcaffe::dl {
namespace {

void add_io(Net& net) {
  net.add_input("data");
  net.add_input("label");
}

void add_loss(Net& net) {
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
}

/// conv + relu pair; returns the relu output blob name.
std::string conv_relu(Net& net, const std::string& name, const std::string& bottom, int in_c,
                      int out_c, int kernel, int stride, int pad) {
  net.add(std::make_unique<Conv2d>(name, in_c, out_c, kernel, stride, pad), {bottom}, name);
  const std::string out = name + "_relu";
  net.add(std::make_unique<Relu>(out), {name}, out);
  return out;
}

}  // namespace

Net make_mlp(const ModelInputSpec& spec, int hidden) {
  Net net("mlp");
  add_io(net);
  const int in_features = spec.channels * spec.height * spec.width;
  net.add(std::make_unique<FullyConnected>("fc1", in_features, hidden), {"data"}, "fc1");
  net.add(std::make_unique<Relu>("relu1"), {"fc1"}, "relu1");
  net.add(std::make_unique<FullyConnected>("fc2", hidden, hidden / 2), {"relu1"}, "fc2");
  net.add(std::make_unique<Relu>("relu2"), {"fc2"}, "relu2");
  net.add(std::make_unique<FullyConnected>("logits", hidden / 2, spec.classes), {"relu2"},
          "logits");
  add_loss(net);
  return net;
}

Net make_mini_vgg(const ModelInputSpec& spec) {
  Net net("mini_vgg");
  add_io(net);
  std::string x = conv_relu(net, "conv1_1", "data", spec.channels, 16, 3, 1, 1);
  x = conv_relu(net, "conv1_2", x, 16, 16, 3, 1, 1);
  net.add(std::make_unique<MaxPool2d>("pool1", 2, 2), {x}, "pool1");
  x = conv_relu(net, "conv2_1", "pool1", 16, 32, 3, 1, 1);
  x = conv_relu(net, "conv2_2", x, 32, 32, 3, 1, 1);
  net.add(std::make_unique<MaxPool2d>("pool2", 2, 2), {x}, "pool2");
  // VGG's signature: a large fully-connected head.
  const int flat = 32 * (spec.height / 4) * (spec.width / 4);
  net.add(std::make_unique<FullyConnected>("fc1", flat, 128), {"pool2"}, "fc1");
  net.add(std::make_unique<Relu>("fc1_relu"), {"fc1"}, "fc1_relu");
  net.add(std::make_unique<Dropout>("drop1", 0.5), {"fc1_relu"}, "drop1");
  net.add(std::make_unique<FullyConnected>("logits", 128, spec.classes), {"drop1"}, "logits");
  add_loss(net);
  return net;
}

namespace {

/// Inception block: branches 1x1, 1x1->3x3, 1x1->3x3->3x3, concatenated.
/// Returns the concat blob name and writes the output channel count.
std::string inception_block(Net& net, const std::string& prefix, const std::string& bottom,
                            int in_c, int b1, int b3_reduce, int b3, int b5_reduce, int b5,
                            int* out_channels) {
  const std::string br1 = conv_relu(net, prefix + "_1x1", bottom, in_c, b1, 1, 1, 0);
  std::string br3 = conv_relu(net, prefix + "_3x3_reduce", bottom, in_c, b3_reduce, 1, 1, 0);
  br3 = conv_relu(net, prefix + "_3x3", br3, b3_reduce, b3, 3, 1, 1);
  std::string br5 = conv_relu(net, prefix + "_5x5_reduce", bottom, in_c, b5_reduce, 1, 1, 0);
  br5 = conv_relu(net, prefix + "_5x5_a", br5, b5_reduce, b5, 3, 1, 1);
  br5 = conv_relu(net, prefix + "_5x5_b", br5, b5, b5, 3, 1, 1);
  const std::string out = prefix + "_concat";
  net.add(std::make_unique<Concat>(out), {br1, br3, br5}, out);
  *out_channels = b1 + b3 + b5;
  return out;
}

}  // namespace

Net make_mini_inception(const ModelInputSpec& spec) {
  Net net("mini_inception");
  add_io(net);
  const std::string stem = conv_relu(net, "stem", "data", spec.channels, 16, 3, 1, 1);
  net.add(std::make_unique<MaxPool2d>("stem_pool", 2, 2), {stem}, "stem_pool");
  int channels = 0;
  std::string x = inception_block(net, "incept1", "stem_pool", 16, 8, 8, 12, 4, 8, &channels);
  std::string y = inception_block(net, "incept2", x, channels, 12, 8, 16, 4, 8, &channels);
  net.add(std::make_unique<GlobalAvgPool>("gap"), {y}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", channels, spec.classes), {"gap"},
          "logits");
  add_loss(net);
  return net;
}

namespace {

/// Residual block: conv-relu-conv, identity shortcut, relu.  The branch's
/// last convolution is zero-initialised so the block starts as an identity.
std::string residual_block(Net& net, const std::string& prefix, const std::string& bottom,
                           int channels) {
  const std::string a = conv_relu(net, prefix + "_a", bottom, channels, channels, 3, 1, 1);
  const std::string b = prefix + "_b";
  auto branch_out = std::make_unique<Conv2d>(b, channels, channels, 3, 1, 1);
  branch_out->set_init_scale(0.0);
  net.add(std::move(branch_out), {a}, b);
  const std::string sum = prefix + "_add";
  net.add(std::make_unique<EltwiseAdd>(sum), {bottom, b}, sum);
  const std::string out = prefix + "_relu";
  net.add(std::make_unique<Relu>(out), {sum}, out);
  return out;
}

}  // namespace

Net make_mini_resnet(const ModelInputSpec& spec) {
  Net net("mini_resnet");
  add_io(net);
  const std::string stem = conv_relu(net, "stem", "data", spec.channels, 16, 3, 1, 1);
  std::string x = residual_block(net, "res1", stem, 16);
  net.add(std::make_unique<MaxPool2d>("pool1", 2, 2), {x}, "pool1");
  x = residual_block(net, "res2", "pool1", 16);
  x = residual_block(net, "res3", x, 16);
  net.add(std::make_unique<GlobalAvgPool>("gap"), {x}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", 16, spec.classes), {"gap"}, "logits");
  add_loss(net);
  return net;
}

namespace {

/// Inception-residual block: inception branches, a linear 1x1 projection
/// back to `channels`, an identity shortcut, and a trailing ReLU.
std::string inception_residual_block(Net& net, const std::string& prefix,
                                     const std::string& bottom, int channels) {
  const int b1 = channels / 2;
  const int b3r = channels / 4;
  const int b3 = channels / 2;
  const std::string br1 = conv_relu(net, prefix + "_1x1", bottom, channels, b1, 1, 1, 0);
  std::string br3 = conv_relu(net, prefix + "_3x3_reduce", bottom, channels, b3r, 1, 1, 0);
  br3 = conv_relu(net, prefix + "_3x3", br3, b3r, b3, 3, 1, 1);
  const std::string cat = prefix + "_concat";
  net.add(std::make_unique<Concat>(cat), {br1, br3}, cat);
  const std::string proj = prefix + "_proj";
  auto projection = std::make_unique<Conv2d>(proj, b1 + b3, channels, 1, 1, 0);
  projection->set_init_scale(0.0);  // identity-at-init residual branch
  net.add(std::move(projection), {cat}, proj);
  const std::string sum = prefix + "_add";
  net.add(std::make_unique<EltwiseAdd>(sum), {bottom, proj}, sum);
  const std::string out = prefix + "_relu";
  net.add(std::make_unique<Relu>(out), {sum}, out);
  return out;
}

}  // namespace

Net make_mini_inception_resnet(const ModelInputSpec& spec) {
  Net net("mini_inception_resnet");
  add_io(net);
  constexpr int kStemChannels = 16;
  net.add(std::make_unique<Conv2d>("stem", spec.channels, kStemChannels, 3, 1, 1), {"data"},
          "stem");
  net.add(std::make_unique<BatchNorm>("stem_bn", kStemChannels), {"stem"}, "stem_bn");
  net.add(std::make_unique<Relu>("stem_relu"), {"stem_bn"}, "stem_relu");
  net.add(std::make_unique<Lrn>("stem_lrn", 5), {"stem_relu"}, "stem_lrn");
  net.add(std::make_unique<MaxPool2d>("stem_pool", 2, 2), {"stem_lrn"}, "stem_pool");
  std::string x = inception_residual_block(net, "incres1", "stem_pool", kStemChannels);
  x = inception_residual_block(net, "incres2", x, kStemChannels);
  net.add(std::make_unique<AvgPool2d>("tail_pool", 2, 2), {x}, "tail_pool");
  net.add(std::make_unique<GlobalAvgPool>("gap"), {"tail_pool"}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", kStemChannels, spec.classes), {"gap"},
          "logits");
  add_loss(net);
  return net;
}

Net make_model(const std::string& family, const ModelInputSpec& spec) {
  if (family == "mlp") return make_mlp(spec);
  if (family == "mini_vgg") return make_mini_vgg(spec);
  if (family == "mini_inception") return make_mini_inception(spec);
  if (family == "mini_resnet") return make_mini_resnet(spec);
  if (family == "mini_inception_resnet") return make_mini_inception_resnet(spec);
  throw std::invalid_argument("unknown model family: " + family);
}

}  // namespace shmcaffe::dl
