// SGD solver with momentum, weight decay and Caffe's learning-rate policies.
//
// Update rule (Caffe convention):
//   v <- momentum * v + lr * (grad + weight_decay * w)
//   w <- w - v
//
// The paper trains with base_lr 0.1, momentum 0.9, the `step` policy with
// gamma 0.1 and a step size of 4 epochs (§IV-C).
#pragma once

#include <string>
#include <vector>

#include "dl/net.h"

namespace shmcaffe::dl {

enum class LrPolicy { kFixed, kStep, kMultiStep, kExp, kInv, kPoly };

struct SolverOptions {
  double base_lr = 0.1;
  LrPolicy lr_policy = LrPolicy::kFixed;
  double gamma = 0.1;               ///< step/exp/inv decay factor
  int step_size = 100000;           ///< iterations per step (kStep)
  std::vector<int> step_values;     ///< boundaries for kMultiStep
  double power = 1.0;               ///< kInv / kPoly exponent
  int max_iter = 100000;            ///< horizon for kPoly
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class SgdSolver {
 public:
  SgdSolver(Net& net, SolverOptions options);

  /// Learning rate the policy yields at `iteration`.
  [[nodiscard]] double learning_rate(int iteration) const;

  /// Applies one update from the currently-accumulated gradients, zeroes
  /// them, and advances the iteration counter.
  void step();

  /// Applies an update at an explicit learning rate without advancing the
  /// counter (used by distributed trainers that control scheduling).
  void apply_update(double lr);

  [[nodiscard]] int iteration() const { return iteration_; }
  void set_iteration(int iteration) { iteration_ = iteration; }
  [[nodiscard]] const SolverOptions& options() const { return options_; }

  /// Momentum buffers flattened into one vector (param order), and the
  /// inverse — used by checkpoint save/restore so a resumed run continues
  /// with the exact velocity state of the interrupted one.
  [[nodiscard]] std::vector<float> momentum_state() const;
  void set_momentum_state(const std::vector<float>& state);

 private:
  Net* net_;
  SolverOptions options_;
  int iteration_ = 0;
  std::vector<Tensor> momentum_;  // one per ParamBlob, same order as net params
};

}  // namespace shmcaffe::dl
