// DAG network container of the mini-Caffe library.
//
// Layers are added in topological order with named input/output blobs:
//
//   Net net("example");
//   net.add_input("data");
//   net.add_input("label");
//   net.add(std::make_unique<Conv2d>("conv1", 3, 16, 3, 1, 1), {"data"}, "conv1");
//   net.add(std::make_unique<Relu>("relu1"), {"conv1"}, "relu1");
//   ...
//   net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"fc", "label"}, "loss");
//
//   net.init_params(rng);
//   net.input("data") = batch_images;   // fill inputs
//   net.input("label") = batch_labels;
//   float loss = net.forward(/*train=*/true)[0];
//   net.backward();                      // parameter grads accumulated
//
// Shapes are inferred lazily: the first forward (and any forward after an
// input shape change) re-runs layer setup.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dl/layer.h"
#include "dl/tensor.h"

namespace shmcaffe::dl {

class Net {
 public:
  explicit Net(std::string name = "net") : name_(std::move(name)) {}
  Net(const Net&) = delete;
  Net& operator=(const Net&) = delete;
  Net(Net&&) = default;
  Net& operator=(Net&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Declares an externally-fed blob (data, labels).
  void add_input(const std::string& blob_name);

  /// Adds a layer; `inputs` must already exist, `output` must be new.
  /// Returns a reference to the stored layer.
  Layer& add(std::unique_ptr<Layer> layer, std::vector<std::string> inputs,
             std::string output);

  /// Mutable access to an input blob (fill before forward).
  [[nodiscard]] Tensor& input(const std::string& blob_name);

  /// Read access to any blob after forward.
  [[nodiscard]] const Tensor& blob(const std::string& blob_name) const;

  [[nodiscard]] bool has_blob(const std::string& blob_name) const;

  /// Runs all layers; returns the last layer's top.
  const Tensor& forward(bool train);

  /// Backpropagates from the last layer's top (which must be scalar — the
  /// loss); accumulates parameter gradients.
  void backward();

  /// All learnable parameters, in deterministic (layer insertion) order.
  [[nodiscard]] std::vector<ParamBlob*> params();

  /// Total learnable scalar count.
  [[nodiscard]] std::size_t param_count();

  /// Initialises every layer's parameters from `rng`.
  void init_params(common::Rng& rng);

  /// Zeroes all parameter gradients (the solver calls this after a step).
  void zero_param_grads();

  [[nodiscard]] std::size_t layer_count() const { return entries_.size(); }

 private:
  struct BlobRec {
    Tensor value;
    Tensor grad;
    bool is_input = false;
  };

  struct Entry {
    std::unique_ptr<Layer> layer;
    std::vector<std::string> inputs;
    std::string output;
    std::vector<std::vector<int>> setup_shapes;  // bottom shapes at last setup
  };

  BlobRec& blob_rec(const std::string& blob_name);
  [[nodiscard]] const BlobRec& blob_rec(const std::string& blob_name) const;

  std::string name_;
  std::map<std::string, BlobRec> blobs_;
  std::vector<Entry> entries_;
};

/// Index of the most probable class per sample, from a [N,K] logits tensor.
std::vector<int> argmax_rows(const Tensor& logits);

}  // namespace shmcaffe::dl
