// Normalisation and extra pooling layers: batch normalisation, local
// response normalisation (GoogLeNet's LRN), and windowed average pooling.
#pragma once

#include "common/arena.h"
#include "common/ordered_mutex.h"
#include "dl/layer.h"

namespace shmcaffe::dl {

/// Spatial batch normalisation over NCHW (per-channel statistics across
/// N, H, W) with learnable scale/shift.  Training uses batch statistics and
/// maintains exponential running averages; evaluation uses the running
/// averages.  The running statistics are non-learnable ParamBlobs, so they
/// are shared/serialised with the model but skipped by the solver.
class BatchNorm final : public Layer {
 public:
  BatchNorm(std::string name, int channels, double momentum = 0.9, double epsilon = 1e-5);

  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;
  std::vector<ParamBlob*> params() override {
    return {&scale_, &shift_, &running_mean_, &running_var_};
  }
  void init_params(common::Rng& rng) override;

 private:
  int channels_;
  double momentum_;
  double epsilon_;
  ParamBlob scale_;         // gamma [C]
  ParamBlob shift_;         // beta [C]
  ParamBlob running_mean_;  // [C], non-learnable
  ParamBlob running_var_;   // [C], non-learnable
  // Cached from the last training forward (for backward).
  // Arena-backed so the per-batch assign never reallocates after the
  // first training iteration.  Owning allocations with layer lifetime:
  // a deliberate escape.
  common::arena::Buffer batch_mean_ SHMCAFFE_PIN_ESCAPE{"dl.norm.batch_mean"};
  common::arena::Buffer batch_inv_std_ SHMCAFFE_PIN_ESCAPE{"dl.norm.batch_inv_std"};
  Tensor normalized_;  // x-hat
};

/// Across-channel local response normalisation (Caffe/AlexNet/GoogLeNet):
///   y_i = x_i / (k + alpha/n * sum_{j in window(i)} x_j^2)^beta
class Lrn final : public Layer {
 public:
  Lrn(std::string name, int local_size = 5, double alpha = 1e-4, double beta = 0.75,
      double k = 1.0);

  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;

 private:
  int local_size_;
  double alpha_;
  double beta_;
  double k_;
  Tensor denom_;  // cached (k + alpha/n * window sum) per element
};

/// Windowed average pooling (square window).
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::string name, int kernel, int stride);

  void setup(const std::vector<const Tensor*>& bottoms, Tensor& top) override;
  void forward(const std::vector<const Tensor*>& bottoms, Tensor& top, bool train) override;
  void backward(const std::vector<const Tensor*>& bottoms, const Tensor& top,
                const Tensor& top_grad, const std::vector<Tensor*>& bottom_grads) override;

 private:
  int kernel_;
  int stride_;
};

}  // namespace shmcaffe::dl
