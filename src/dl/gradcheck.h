// Numerical gradient checking for nets (test utility).
//
// For a sample of parameters, compares the analytic gradient produced by
// backward() against the central finite difference of the loss.  Inputs and
// labels must already be loaded into the net.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "dl/net.h"

namespace shmcaffe::dl {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::size_t checked = 0;
  /// Per-check relative errors (for quantile-based assertions: in deep ReLU
  /// nets a few samples legitimately straddle activation kinks and blow up
  /// the max, while a genuinely wrong gradient corrupts most samples).
  std::vector<double> rel_errors;

  /// q-th quantile of the per-check relative errors (q in [0,1]).
  [[nodiscard]] double rel_error_quantile(double q) const {
    if (rel_errors.empty()) return 0.0;
    std::vector<double> sorted = rel_errors;
    std::sort(sorted.begin(), sorted.end());
    const auto index = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[index];
  }
};

/// Checks up to `max_checks` randomly-chosen parameters with step `epsilon`.
/// Nets must be deterministic across forward calls (no dropout, or dropout
/// probability 0).
///
/// `denominator_floor` bounds the relative-error denominator from below:
/// fp32 forward passes give the central difference an absolute noise floor
/// of ~1e-4/epsilon, so gradients much smaller than the floor are judged on
/// absolute rather than relative error.  Keep epsilon small (~1e-3): larger
/// steps cross ReLU kinks and corrupt the numeric estimate.
inline GradCheckResult check_gradients(Net& net, double epsilon, std::size_t max_checks,
                                       common::Rng& rng,
                                       double denominator_floor = 0.02) {
  GradCheckResult result;

  // Analytic gradients.
  net.zero_param_grads();
  (void)net.forward(/*train=*/true);
  net.backward();

  const auto params = net.params();
  std::size_t total = 0;
  for (ParamBlob* blob : params) total += blob->value.size();

  for (std::size_t check = 0; check < max_checks; ++check) {
    const std::size_t flat = rng.next_below(total);
    // Locate the blob and element.
    std::size_t offset = 0;
    ParamBlob* blob = nullptr;
    std::size_t index = 0;
    for (ParamBlob* candidate : params) {
      if (flat < offset + candidate->value.size()) {
        blob = candidate;
        index = flat - offset;
        break;
      }
      offset += candidate->value.size();
    }
    const float saved = blob->value[index];
    blob->value[index] = saved + static_cast<float>(epsilon);
    const double loss_plus = net.forward(true)[0];
    blob->value[index] = saved - static_cast<float>(epsilon);
    const double loss_minus = net.forward(true)[0];
    blob->value[index] = saved;

    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    const double analytic = blob->grad[index];
    const double abs_error = std::abs(numeric - analytic);
    const double denom = std::max({std::abs(numeric), std::abs(analytic), denominator_floor});
    result.max_abs_error = std::max(result.max_abs_error, abs_error);
    result.max_rel_error = std::max(result.max_rel_error, abs_error / denom);
    result.rel_errors.push_back(abs_error / denom);
    ++result.checked;
  }
  return result;
}

}  // namespace shmcaffe::dl
