// Model snapshot (de)serialisation — the mini-Caffe counterpart of Caffe's
// .caffemodel files.
//
// Format (little-endian):
//   u32 magic "SCM1", u32 blob_count,
//   per blob: u32 name_length, name bytes, u32 rank, i32 dims..., f32 data...
//
// Loading validates that blob names and shapes match the target net's
// parameters (same architecture), so snapshots cannot be silently applied to
// a different model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dl/net.h"

namespace shmcaffe::dl {

/// Serialises all parameter values of `net`.
std::vector<std::byte> save_snapshot(Net& net);

/// Restores parameter values; throws std::invalid_argument on a malformed
/// or mismatching snapshot.  Atomic: validation completes over the whole
/// snapshot before any parameter is written, so a rejected snapshot leaves
/// the net untouched (no partial restore from truncated input).
void load_snapshot(Net& net, std::span<const std::byte> snapshot);

/// Convenience: file round-trip.  Throws std::runtime_error on I/O errors.
void save_snapshot_file(Net& net, const std::string& path);
void load_snapshot_file(Net& net, const std::string& path);

}  // namespace shmcaffe::dl
