#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace shmcaffe::fault {

const char* to_string(FaultKind kind) {
  // Exhaustive by construction: no `default`, so -Wswitch flags any kind
  // added to the enum but forgotten here.
  switch (kind) {
    case FaultKind::kWorkerCrash: return "worker_crash";
    case FaultKind::kWorkerStall: return "worker_stall";
    case FaultKind::kServerFreeze: return "server_freeze";
    case FaultKind::kServerFailStop: return "server_fail_stop";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kDatagramDrop: return "datagram_drop";
    case FaultKind::kSegmentCorruption: return "segment_corruption";
    case FaultKind::kTornWrite: return "torn_write";
  }
  __builtin_unreachable();
}

FaultPlan FaultPlan::generate(const FaultPlanSpec& spec) {
  FaultPlan plan;
  common::Rng rng(spec.seed);

  // Iteration-indexed worker faults: visit workers in index order so the
  // draw sequence — and therefore the plan — is a pure function of the spec.
  const std::int64_t hi_iter = std::max<std::int64_t>(1, spec.horizon_iterations - 1);
  common::Rng worker_rng = rng.fork(0x77);
  for (int w = 0; w < spec.workers; ++w) {
    if (spec.crash_probability > 0.0 && worker_rng.chance(spec.crash_probability)) {
      FaultEvent event;
      event.kind = FaultKind::kWorkerCrash;
      event.target = w;
      event.iteration = worker_rng.uniform_int(1, hi_iter);
      plan.add(event);
    }
    if (spec.stall_probability > 0.0 && worker_rng.chance(spec.stall_probability)) {
      FaultEvent event;
      event.kind = FaultKind::kWorkerStall;
      event.target = w;
      event.iteration = worker_rng.uniform_int(1, hi_iter);
      event.duration_seconds =
          spec.mean_stall_seconds * worker_rng.uniform(0.5, 1.5);
      plan.add(event);
    }
  }

  common::Rng server_rng = rng.fork(0x5e);
  for (int s = 0; s < spec.servers; ++s) {
    if (spec.freeze_probability > 0.0 && server_rng.chance(spec.freeze_probability)) {
      FaultEvent event;
      event.kind = FaultKind::kServerFreeze;
      event.target = s;
      event.start_seconds = server_rng.uniform(0.0, spec.horizon_seconds);
      event.duration_seconds =
          spec.mean_freeze_seconds * server_rng.uniform(0.5, 1.5);
      plan.add(event);
    }
  }

  common::Rng link_rng = rng.fork(0x11);
  for (int l = 0; l < spec.links; ++l) {
    if (spec.link_flap_probability > 0.0 && link_rng.chance(spec.link_flap_probability)) {
      FaultEvent event;
      event.kind = link_rng.chance(0.5) ? FaultKind::kLinkDown : FaultKind::kLinkDegrade;
      event.target = l;
      event.start_seconds = link_rng.uniform(0.0, spec.horizon_seconds);
      event.duration_seconds = spec.mean_flap_seconds * link_rng.uniform(0.5, 1.5);
      event.severity = event.kind == FaultKind::kLinkDown ? 0.0 : spec.degrade_severity;
      plan.add(event);
    }
  }

  common::Rng corrupt_rng = rng.fork(0xc0);
  for (int s = 0; s < spec.servers; ++s) {
    if (spec.corruption_probability > 0.0 && corrupt_rng.chance(spec.corruption_probability)) {
      FaultEvent event;
      event.kind = FaultKind::kSegmentCorruption;
      event.target = s;
      event.start_seconds = corrupt_rng.uniform(0.0, spec.horizon_seconds);
      event.severity = static_cast<double>(std::max(1, spec.corruption_bit_flips));
      // Nonzero marker with the high bit clear (the torn-write marker space
      // owns the high bit); doubles as the bit-position seed.
      event.sequence = 1 + corrupt_rng.next_below(0x7fffffffffffffffULL);
      plan.add(event);
    }
  }

  common::Rng torn_rng = rng.fork(0x7e);
  for (int s = 0; s < spec.servers; ++s) {
    if (spec.torn_write_probability > 0.0 && spec.writes_per_server > 0 &&
        torn_rng.chance(spec.torn_write_probability)) {
      FaultEvent event;
      event.kind = FaultKind::kTornWrite;
      event.target = s;
      event.sequence = static_cast<std::uint64_t>(
          torn_rng.uniform_int(1, static_cast<std::int64_t>(spec.writes_per_server)));
      event.severity = spec.torn_write_fraction;
      plan.add(event);
    }
  }

  if (spec.datagram_drop_rate > 0.0 && spec.datagram_count > 0) {
    common::Rng drop_rng = rng.fork(0xd6);
    for (std::uint64_t seq = 0; seq < spec.datagram_count; ++seq) {
      if (drop_rng.chance(spec.datagram_drop_rate)) {
        FaultEvent event;
        event.kind = FaultKind::kDatagramDrop;
        event.sequence = seq;
        plan.add(event);
      }
    }
  }
  return plan;
}

std::uint64_t FaultPlan::fingerprint() const {
  // FNV-1a over the canonical field encoding of every event, in order.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](std::uint64_t word) {
    hash ^= word;
    hash *= 0x100000001b3ULL;
  };
  auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  for (const FaultEvent& event : events_) {
    mix(static_cast<std::uint64_t>(event.kind));
    mix(static_cast<std::uint64_t>(event.target));
    mix(static_cast<std::uint64_t>(event.iteration));
    mix_double(event.start_seconds);
    mix_double(event.duration_seconds);
    mix_double(event.severity);
    mix(event.sequence);
  }
  return hash;
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[160];
  for (const FaultEvent& event : events_) {
    std::snprintf(line, sizeof(line),
                  "%s target=%d iter=%lld start=%.3fs dur=%.3fs sev=%.2f seq=%llu\n",
                  to_string(event.kind), event.target,
                  static_cast<long long>(event.iteration), event.start_seconds,
                  event.duration_seconds, event.severity,
                  static_cast<unsigned long long>(event.sequence));
    out += line;
  }
  return out;
}

}  // namespace shmcaffe::fault
