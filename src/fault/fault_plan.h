// Deterministic fault plans for the ShmCaffe training stack.
//
// ShmCaffe's decoupling claim (§III-E, Fig. 6) is that an asynchronous
// SEASGD worker that slows down or dies costs only its own contribution,
// while synchronous SGD pays max-over-workers.  Measuring that claim — and
// hardening the functional stack against it — needs a fault model that is
//   * expressive: worker crashes, transient stalls, SMB server freezes,
//     link degradation/outage windows, dropped datagrams;
//   * deterministic: a (seed, spec) pair always generates the bit-identical
//     event sequence, so a functional run, its timed twin, and a rerun for
//     a paper plot all see the same failures;
//   * shared: both the real-thread trainer and the discrete-event
//     simulation consume the same FaultPlan through the same queries.
//
// A FaultPlan is a plain ordered container of FaultEvents.  Build one by
// hand for targeted tests, or generate one from a FaultPlanSpec for
// sensitivity sweeps.  The FaultInjector in injector.h wraps a plan with
// the per-worker / per-link query API the two stacks use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shmcaffe::fault {

enum class FaultKind : std::uint8_t {
  kWorkerCrash,   ///< worker exits (fail-stop) at the start of iteration `iteration`
  kWorkerStall,   ///< worker pauses `duration_seconds` at the start of `iteration`
  kServerFreeze,  ///< SMB server data path blocked during [start, start+duration)
  kServerFailStop,  ///< SMB server dies permanently at `start_seconds`
  kLinkDegrade,   ///< link capacity multiplied by `severity` during the window
  kLinkDown,      ///< link capacity ~0 during the window (flap)
  kDatagramDrop,  ///< control datagram with global sequence `sequence` is lost once
  kSegmentCorruption,  ///< silent bit-flips in server `target`'s segments at `start_seconds`
  kTornWrite,  ///< server `target` applies write ordinal `sequence` only partially
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One injected fault.  Which fields are meaningful depends on `kind`:
/// crash/stall are (target=worker, iteration[, duration]); freeze is
/// (target=server, start, duration); link events are (target=link, start,
/// duration[, severity]); drops are (sequence).  The integrity faults reuse
/// the same fields rather than widening the struct (the fingerprint encoding
/// stays stable): corruption is (target=server, start, severity=bit-flip
/// count, sequence=nonzero marker doubling as the bit-position seed; high bit
/// clear); a torn write is (target=server, sequence=1-based server-local
/// write ordinal, severity=fraction of the payload that lands; the marker is
/// `sequence` with the high bit set, so the two marker spaces never collide).
struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerCrash;
  int target = -1;                 ///< worker / server / link index
  std::int64_t iteration = -1;     ///< iteration-indexed faults
  double start_seconds = 0.0;      ///< time-windowed faults (sim or wall time)
  double duration_seconds = 0.0;
  double severity = 1.0;           ///< bandwidth multiplier for kLinkDegrade
  std::uint64_t sequence = 0;      ///< datagram sequence for kDatagramDrop

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Parameters for generating a random-but-reproducible plan.  All rates
/// default to zero, so a spec only injects what the caller asks for.
struct FaultPlanSpec {
  std::uint64_t seed = 0x0fau;
  int workers = 4;
  std::int64_t horizon_iterations = 100;  ///< faults land in [1, horizon)
  double horizon_seconds = 10.0;          ///< window faults land in [0, horizon)

  double crash_probability = 0.0;    ///< per worker: one fail-stop crash
  double stall_probability = 0.0;    ///< per worker: one transient stall
  double mean_stall_seconds = 0.0;   ///< stall duration ~ U(0.5, 1.5) * mean

  int servers = 0;                   ///< SMB servers eligible for freezes
  double freeze_probability = 0.0;   ///< per server: one freeze window
  double mean_freeze_seconds = 0.0;

  int links = 0;                     ///< fabric links eligible for flaps
  double link_flap_probability = 0.0;  ///< per link: one degrade-or-down window
  double mean_flap_seconds = 0.0;
  double degrade_severity = 0.1;     ///< capacity multiplier while degraded

  std::uint64_t datagram_count = 0;  ///< sequence space for drops
  double datagram_drop_rate = 0.0;   ///< fraction of the space dropped

  double corruption_probability = 0.0;  ///< per server: one silent bit-flip burst
  int corruption_bit_flips = 3;         ///< flips per burst (event.severity)
  double torn_write_probability = 0.0;  ///< per server: one partially-applied write
  std::uint64_t writes_per_server = 0;  ///< write-ordinal space for torn writes
  double torn_write_fraction = 0.5;     ///< payload fraction that lands (event.severity)
};

/// An ordered, deterministic fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events) : events_(std::move(events)) {}

  /// Deterministically expands a spec: same spec (including seed) always
  /// yields the bit-identical event sequence, independent of platform.
  static FaultPlan generate(const FaultPlanSpec& spec);

  void add(FaultEvent event) { events_.push_back(event); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Order-sensitive digest of the full event sequence; two plans with the
  /// same fingerprint injected the same faults in the same order.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Human-readable one-line-per-event rendering (logs, bench artefacts).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace shmcaffe::fault
