#include "fault/injector.h"

#include <algorithm>

namespace shmcaffe::fault {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kDatagramDrop) dropped_sequences_.insert(event.sequence);
  }
}

std::int64_t FaultInjector::crash_iteration(int worker) const {
  std::int64_t earliest = -1;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kWorkerCrash || event.target != worker) continue;
    if (earliest < 0 || event.iteration < earliest) earliest = event.iteration;
  }
  return earliest;
}

double FaultInjector::stall_seconds(int worker, std::int64_t iteration) const {
  double total = 0.0;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kWorkerStall && event.target == worker &&
        event.iteration == iteration) {
      total += event.duration_seconds;
    }
  }
  return total;
}

std::vector<FaultEvent> FaultInjector::server_freezes(int server) const {
  std::vector<FaultEvent> result;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kServerFreeze && event.target == server) {
      result.push_back(event);
    }
  }
  return result;
}

std::vector<FaultEvent> FaultInjector::server_fail_stops(int server) const {
  std::vector<FaultEvent> result;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kServerFailStop && event.target == server) {
      result.push_back(event);
    }
  }
  return result;
}

std::vector<FaultEvent> FaultInjector::link_windows(int link) const {
  std::vector<FaultEvent> result;
  for (const FaultEvent& event : plan_.events()) {
    if ((event.kind == FaultKind::kLinkDegrade || event.kind == FaultKind::kLinkDown) &&
        event.target == link) {
      result.push_back(event);
    }
  }
  return result;
}

std::vector<FaultEvent> FaultInjector::all_link_windows() const {
  std::vector<FaultEvent> result;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kLinkDegrade || event.kind == FaultKind::kLinkDown) {
      result.push_back(event);
    }
  }
  return result;
}

std::vector<FaultEvent> FaultInjector::segment_corruptions(int server) const {
  std::vector<FaultEvent> result;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kSegmentCorruption && event.target == server) {
      result.push_back(event);
    }
  }
  return result;
}

std::vector<FaultEvent> FaultInjector::torn_writes(int server) const {
  std::vector<FaultEvent> result;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kTornWrite && event.target == server) {
      result.push_back(event);
    }
  }
  return result;
}

std::vector<std::uint64_t> FaultInjector::dropped_sequences() const {
  std::vector<std::uint64_t> result(dropped_sequences_.begin(), dropped_sequences_.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace shmcaffe::fault
