// FaultInjector: the query API both training stacks consume.
//
// The injector indexes a FaultPlan for O(1)-ish lookups at iteration
// boundaries (the functional trainer asks "do I crash/stall now?" from real
// worker threads; the timed simulator asks the same at simulated iteration
// starts) and exposes the time-windowed events for the fabric / SMB server
// to schedule.  The injector is immutable after construction and therefore
// safe to share across threads without locking.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fault/fault_plan.h"

namespace shmcaffe::fault {

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // --- worker faults (iteration-indexed) --------------------------------

  /// Iteration at which `worker` fail-stops, or -1 if it never crashes.
  [[nodiscard]] std::int64_t crash_iteration(int worker) const;

  /// True exactly at the iteration where `worker` crashes (and after).
  [[nodiscard]] bool crashes_at(int worker, std::int64_t iteration) const {
    const std::int64_t at = crash_iteration(worker);
    return at >= 0 && iteration >= at;
  }

  /// Total injected stall for `worker` at the start of `iteration` (0 if none).
  [[nodiscard]] double stall_seconds(int worker, std::int64_t iteration) const;

  // --- time-windowed faults ---------------------------------------------

  /// Freeze windows for SMB server `server`.
  [[nodiscard]] std::vector<FaultEvent> server_freezes(int server) const;

  /// Permanent fail-stop events for SMB server `server` (the recovery
  /// layer's failover trigger; usually zero or one per server).
  [[nodiscard]] std::vector<FaultEvent> server_fail_stops(int server) const;

  /// Degrade/down windows for fabric link `link`.
  [[nodiscard]] std::vector<FaultEvent> link_windows(int link) const;

  /// All link events regardless of target (for callers that own the
  /// link-index mapping).
  [[nodiscard]] std::vector<FaultEvent> all_link_windows() const;

  // --- integrity faults ---------------------------------------------------

  /// Silent bit-flip bursts aimed at SMB server `server` (fired at
  /// `start_seconds`; `severity` flips, `sequence` is the marker/seed).
  [[nodiscard]] std::vector<FaultEvent> segment_corruptions(int server) const;

  /// Torn writes aimed at SMB server `server` (`sequence` is the 1-based
  /// server-local write ordinal to tear, `severity` the applied fraction).
  [[nodiscard]] std::vector<FaultEvent> torn_writes(int server) const;

  // --- datagram drops ----------------------------------------------------

  [[nodiscard]] bool drops_datagram(std::uint64_t sequence) const {
    return dropped_sequences_.contains(sequence);
  }
  [[nodiscard]] std::vector<std::uint64_t> dropped_sequences() const;

  [[nodiscard]] std::uint64_t fingerprint() const { return plan_.fingerprint(); }

 private:
  FaultPlan plan_;
  std::unordered_set<std::uint64_t> dropped_sequences_;
};

}  // namespace shmcaffe::fault
