#include "sim/simulation.h"

#include <cassert>
#include <cstdlib>

namespace shmcaffe::sim {

namespace detail {

std::coroutine_handle<> RootCoro::FinalAwaiter::await_suspend(Handle h) const noexcept {
  Simulation* sim = h.promise().sim;
  sim->unregister_root(h.promise().root_id);
  h.destroy();
  return std::noop_coroutine();
}

void RootCoro::promise_type::unhandled_exception() noexcept {
  // The spawn wrapper catches everything into ProcessState; an exception
  // reaching the root promise means the wrapper itself is broken.
  std::abort();
}

namespace {

RootCoro run_root(Task<void> body, std::shared_ptr<ProcessState> state) {
  try {
    co_await std::move(body);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  for (std::coroutine_handle<> joiner : std::exchange(state->joiners, {})) {
    state->sim->schedule_now(joiner);
  }
}

}  // namespace
}  // namespace detail

void JoinHandle::rethrow() const {
  assert(done());
  if (state_->exception) std::rethrow_exception(state_->exception);
}

Simulation::~Simulation() {
  // Destroy still-suspended processes in spawn order (the map is keyed by
  // spawn sequence, so destruction order is deterministic).  Copy first:
  // destroying a root frame never re-enters the registry (only the final
  // awaiter unregisters, and we are not resuming anything here).
  const std::map<std::uint64_t, void*> roots = live_roots_;
  for (const auto& [id, address] : roots) {
    detail::RootCoro::Handle::from_address(address).destroy();
  }
}

JoinHandle Simulation::spawn(Task<void> body) {
  auto state = std::make_shared<detail::ProcessState>();
  state->sim = this;
  detail::RootCoro root = detail::run_root(std::move(body), state);
  root.handle.promise().sim = this;
  root.handle.promise().root_id = next_root_id_++;
  live_roots_.emplace(root.handle.promise().root_id, root.handle.address());
  schedule_now(root.handle);
  return JoinHandle(std::move(state));
}

void Simulation::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(QueueEntry{t, next_seq_++, h});
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  assert(entry.time >= now_);
  now_ = entry.time;
  ++events_dispatched_;
  entry.handle.resume();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (t > now_) now_ = t;
}

}  // namespace shmcaffe::sim
