// Synchronisation primitives for simulated processes.
//
// All wake-ups are handed to the Simulation queue (never resumed inline), so
// waiters run in deterministic FIFO order at the current simulated time.
//
//   Event      — level-triggered broadcast flag (set/reset/wait)
//   Semaphore  — counting semaphore with FIFO handoff
//   SimMutex   — mutual exclusion; `co_await m.scoped_lock()` returns a RAII guard
//   Barrier    — reusable N-party barrier (generation-counted)
//   Channel<T> — bounded FIFO with awaitable push/pop
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"

namespace shmcaffe::sim {

/// Level-triggered event: wait() completes immediately while set.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const { return set_; }

  /// Sets the flag and wakes every current waiter.
  void set() {
    set_ = true;
    for (std::coroutine_handle<> h : std::exchange(waiters_, {})) sim_->schedule_now(h);
  }

  void reset() { set_ = false; }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) const { event->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore.  release() hands permits directly to queued waiters
/// (FIFO), so a releaser cannot barge past an earlier blocked acquirer.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t initial) : sim_(&sim), available_(initial) {
    assert(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::int64_t available() const { return available_; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->available_ > 0) {
          --sem->available_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const { sem->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release(std::int64_t n = 1) {
    assert(n >= 0);
    while (n > 0 && !waiters_.empty()) {
      sim_->schedule_now(waiters_.front());
      waiters_.pop_front();
      --n;
    }
    available_ += n;
  }

 private:
  Simulation* sim_;
  std::int64_t available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

class SimMutex;

/// RAII ownership of a SimMutex; unlocks when destroyed (or released).
class [[nodiscard]] SimLock {
 public:
  SimLock() = default;
  explicit SimLock(SimMutex* mutex) : mutex_(mutex) {}
  SimLock(SimLock&& other) noexcept : mutex_(std::exchange(other.mutex_, nullptr)) {}
  SimLock& operator=(SimLock&& other) noexcept {
    if (this != &other) {
      unlock();
      mutex_ = std::exchange(other.mutex_, nullptr);
    }
    return *this;
  }
  SimLock(const SimLock&) = delete;
  SimLock& operator=(const SimLock&) = delete;
  ~SimLock() { unlock(); }

  [[nodiscard]] bool owns_lock() const { return mutex_ != nullptr; }
  void unlock();

 private:
  SimMutex* mutex_ = nullptr;
};

/// Mutual exclusion for simulated processes.
class SimMutex {
 public:
  explicit SimMutex(Simulation& sim) : sem_(sim, 1) {}

  /// `SimLock lock = co_await m.scoped_lock();`
  auto scoped_lock() {
    struct Awaiter {
      SimMutex* mutex;
      decltype(std::declval<Semaphore>().acquire()) inner;
      bool await_ready() const noexcept { return inner.await_ready(); }
      void await_suspend(std::coroutine_handle<> h) const { inner.await_suspend(h); }
      SimLock await_resume() const noexcept { return SimLock{mutex}; }
    };
    return Awaiter{this, sem_.acquire()};
  }

  [[nodiscard]] bool is_locked() const { return sem_.available() == 0; }

 private:
  friend class SimLock;
  Semaphore sem_;
};

inline void SimLock::unlock() {
  if (mutex_ != nullptr) {
    mutex_->sem_.release();
    mutex_ = nullptr;
  }
}

/// Reusable barrier for `parties` processes.
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties) : sim_(&sim), parties_(parties) {
    assert(parties >= 1);
  }

  auto arrive_and_wait() {
    struct Awaiter {
      Barrier* barrier;
      bool await_ready() const noexcept {
        if (barrier->arrived_ + 1 == barrier->parties_) {
          barrier->arrived_ = 0;
          for (std::coroutine_handle<> h : std::exchange(barrier->waiters_, {})) {
            barrier->sim_->schedule_now(h);
          }
          return true;  // last arriver passes straight through
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        ++barrier->arrived_;
        barrier->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Bounded FIFO channel between simulated processes.
template <typename T>
class Channel {
 public:
  Channel(Simulation& sim, std::size_t capacity)
      : slots_(sim, static_cast<std::int64_t>(capacity)), items_(sim, 0) {
    assert(capacity >= 1);
  }

  Task<void> push(T value) {
    co_await slots_.acquire();
    buffer_.push_back(std::move(value));
    items_.release();
  }

  Task<T> pop() {
    co_await items_.acquire();
    assert(!buffer_.empty());
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    slots_.release();
    co_return value;
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  Semaphore slots_;
  Semaphore items_;
  std::deque<T> buffer_;
};

}  // namespace shmcaffe::sim
