// Lazy coroutine task used by every simulated process.
//
// Task<T> is a single-consumer lazy coroutine: creating one does not run any
// code; `co_await`-ing it starts the child and transfers control back to the
// awaiting coroutine when the child completes (symmetric transfer, so deep
// call chains do not grow the native stack).  Ownership of the coroutine
// frame sits in the Task object, so destroying a parent frame releases the
// whole child chain.
//
// Tasks must be awaited at most once and only as rvalues:
//   sim::Task<int> child();
//   int v = co_await child();
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

namespace shmcaffe::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromise;

/// At child completion, resume whoever awaited it (or no-op for detached
/// completion, which Task never produces but keeps the awaiter total).
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    std::coroutine_handle<> continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }

  T take_value() {
    if (exception) std::rethrow_exception(exception);
    assert(value.has_value());
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}

  void take_value() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;

      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        child.promise().continuation = awaiting;
        return child;  // start the child now
      }
      T await_resume() { return child.promise().take_value(); }
    };
    assert(handle_ && "co_await on a moved-from or spent Task");
    return Awaiter{handle_};
  }

 private:
  friend struct detail::TaskPromise<T>;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail
}  // namespace shmcaffe::sim
