// Discrete-event simulation core.
//
// A Simulation owns a virtual clock and an event queue of coroutine handles.
// Simulated processes are spawned as root coroutines (`spawn`) and advance
// exclusively by awaiting: `co_await sim.delay(ns)`, or the primitives in
// sync.h.  The run loop is strictly deterministic: events fire in
// (time, insertion-sequence) order, so a given program produces the same
// trace on every run.
//
// Lifetime protocol: the Simulation must outlive nothing — it is destroyed
// last.  Destroying it cancels (destroys) any still-suspended root process
// frames.  Sync primitives hand wake-ups to the queue instead of resuming
// inline, which keeps resume stacks shallow and wake order deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace shmcaffe::sim {

class Simulation;

namespace detail {

/// Shared completion record of a spawned process.
struct ProcessState {
  Simulation* sim = nullptr;
  bool done = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> joiners;
};

/// Fire-and-forget root coroutine; its frame is destroyed by its own final
/// awaiter (after unregistering from the simulation's live-root set).
struct RootCoro {
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    Simulation* sim = nullptr;
    std::uint64_t root_id = 0;  ///< registry key; spawn order, deterministic

    RootCoro get_return_object() { return RootCoro{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept;  // roots swallow into ProcessState; terminate otherwise
  };

  Handle handle;
};

}  // namespace detail

/// Join/result handle for a spawned process; awaitable from other processes.
/// Discardable: spawn() is frequently fire-and-forget.
class JoinHandle {
 public:
  JoinHandle() = default;

  [[nodiscard]] bool done() const { return state_ && state_->done; }

  /// Rethrows the process's escaped exception, if any.  Requires done().
  void rethrow() const;

  [[nodiscard]] bool failed() const { return state_ && state_->exception != nullptr; }

  auto operator co_await() const noexcept {
    struct Awaiter {
      detail::ProcessState* state;
      bool await_ready() const noexcept { return state->done; }
      void await_suspend(std::coroutine_handle<> h) const { state->joiners.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{state_.get()};
  }

 private:
  friend class Simulation;
  explicit JoinHandle(std::shared_ptr<detail::ProcessState> state) : state_(std::move(state)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  [[nodiscard]] SimTime now() const { return now_; }

  /// Starts `body` as a root process at the current time (queued FIFO).
  JoinHandle spawn(Task<void> body);

  /// Awaitable that resumes the caller `dt` nanoseconds later (dt >= 0).
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulation* sim;
      SimTime at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const { sim->schedule_at(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + (dt > 0 ? dt : 0)};
  }

  /// Queue a handle to resume at an absolute time (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Queue a handle to resume at the current time, after already-queued
  /// same-time events.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains.  Processes still suspended afterwards are
  /// blocked on primitives nobody will signal (deadlocked or abandoned).
  void run();

  /// Runs events with time <= t, then sets the clock to t.
  void run_until(SimTime t);

  /// Number of root processes not yet finished.
  [[nodiscard]] std::size_t live_process_count() const { return live_roots_.size(); }

  /// Total events dispatched so far (for engine micro-benchmarks).
  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  friend struct detail::RootCoro::FinalAwaiter;

  void unregister_root(std::uint64_t root_id) { live_roots_.erase(root_id); }

  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_root_id_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  /// Live root frames keyed by spawn sequence.  Deliberately an ordered map
  /// keyed by a stable id, NOT a pointer-keyed unordered container: the
  /// destructor iterates it, and frame destruction order must not depend on
  /// where the allocator placed coroutine frames (ASLR would make traces
  /// differ run to run).
  std::map<std::uint64_t, void*> live_roots_;
};

/// Runs all tasks as concurrent processes and completes when every one has
/// finished; the first captured exception (in task order) is rethrown.
inline Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks) {
  std::vector<JoinHandle> handles;
  handles.reserve(tasks.size());
  for (Task<void>& task : tasks) handles.push_back(sim.spawn(std::move(task)));
  for (const JoinHandle& handle : handles) {
    co_await handle;
    handle.rethrow();
  }
}

}  // namespace shmcaffe::sim
