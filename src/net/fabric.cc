#include "net/fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace shmcaffe::net {

struct Fabric::Link {
  LinkStats stats;
  double data_rate_bps = 0.0;   // capacity * efficiency
  double capacity_scale = 1.0;  // fault-injection multiplier (0 = link down)
  sim::Semaphore fifo_gate;     // used only by the kFifoSerial discipline
  std::size_t active_flows = 0;

  Link(sim::Simulation& sim, std::string name, double capacity)
      : fifo_gate(sim, 1) {
    stats.name = std::move(name);
    stats.capacity_bps = capacity;
  }

  [[nodiscard]] double effective_rate() const { return data_rate_bps * capacity_scale; }
};

struct Fabric::Flow {
  std::vector<std::size_t> links;
  double remaining_bytes = 0.0;
  double rate_bps = 0.0;
  bool rate_fixed = false;  // scratch for the water-filling pass
  sim::Event done;

  Flow(sim::Simulation& sim, std::vector<std::size_t> path, double bytes)
      : links(std::move(path)), remaining_bytes(bytes), done(sim) {}
};

Fabric::Fabric(sim::Simulation& sim, FabricOptions options)
    : sim_(&sim), options_(options) {
  assert(options_.efficiency > 0.0 && options_.efficiency <= 1.0);
}

Fabric::~Fabric() = default;

LinkId Fabric::add_link(std::string name, double capacity_bytes_per_sec) {
  assert(capacity_bytes_per_sec > 0.0);
  auto link = std::make_unique<Link>(*sim_, std::move(name), capacity_bytes_per_sec);
  link->data_rate_bps = capacity_bytes_per_sec * options_.efficiency;
  links_.push_back(std::move(link));
  return LinkId{links_.size() - 1};
}

Fabric::Endpoint Fabric::add_endpoint(const std::string& name, double capacity_bytes_per_sec) {
  return Endpoint{add_link(name + ".tx", capacity_bytes_per_sec),
                  add_link(name + ".rx", capacity_bytes_per_sec)};
}

const LinkStats& Fabric::stats(LinkId link) const {
  assert(link.valid() && link.index < links_.size());
  return links_[link.index]->stats;
}

sim::Task<void> Fabric::transfer(LinkId a, std::int64_t bytes) {
  return transfer(std::vector<LinkId>{a}, bytes);
}

sim::Task<void> Fabric::transfer(LinkId a, LinkId b, std::int64_t bytes) {
  return transfer(std::vector<LinkId>{a, b}, bytes);
}

sim::Task<void> Fabric::transfer(LinkId a, LinkId b, LinkId c, std::int64_t bytes) {
  return transfer(std::vector<LinkId>{a, b, c}, bytes);
}

sim::Task<void> Fabric::transfer(std::vector<LinkId> path, std::int64_t bytes) {
  assert(!path.empty());
  assert(bytes >= 0);
  const std::uint64_t seq = next_transfer_seq_++;
  const bool dropped = std::binary_search(dropped_transfers_.begin(),
                                          dropped_transfers_.end(), seq);
  // A dropped transfer is retransmitted once: it pays the message latency
  // and moves the payload a second time.
  const int attempts = dropped ? 2 : 1;
  for (LinkId id : path) {
    assert(id.valid() && id.index < links_.size());
    Link& link = *links_[id.index];
    link.stats.bytes_carried += bytes * attempts;
    link.stats.transfers += attempts;
  }
  if (options_.sharing == SharingModel::kFifoSerial) {
    return transfer_fifo(std::move(path), bytes, attempts);
  }
  return transfer_fair(std::move(path), bytes, attempts);
}

sim::Task<void> Fabric::transfer_fair(std::vector<LinkId> path, std::int64_t bytes,
                                      int attempts) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    co_await sim_->delay(options_.message_latency);
    if (bytes == 0) continue;

    std::vector<std::size_t> indices;
    indices.reserve(path.size());
    for (LinkId id : path) indices.push_back(id.index);

    Flow flow(*sim_, std::move(indices), static_cast<double>(bytes));
    add_flow(&flow);
    co_await flow.done.wait();
  }
}

sim::Task<void> Fabric::transfer_fifo(std::vector<LinkId> path, std::int64_t bytes,
                                      int attempts) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    co_await sim_->delay(options_.message_latency);
    if (bytes == 0) continue;
    // Store-and-forward: occupy each link exclusively, in path order.
    for (LinkId id : path) {
      Link& link = *links_[id.index];
      co_await link.fifo_gate.acquire();
      co_await sim_->delay(units::transfer_time(bytes, link.effective_rate()));
      link.fifo_gate.release();
    }
  }
}

void Fabric::schedule_capacity_window(LinkId link, SimTime start, SimTime duration,
                                      double multiplier) {
  assert(link.valid() && link.index < links_.size());
  assert(multiplier >= 0.0);
  // A fully-down link needs the max-min engine's re-settling to stall and
  // resume flows; the FIFO discipline's in-flight delays cannot be revised.
  assert(multiplier > 0.0 || options_.sharing == SharingModel::kMaxMinFair);
  assert(duration > 0);
  sim_->spawn([](Fabric* fabric, std::size_t index, SimTime at, SimTime dur,
                 double scale) -> sim::Task<void> {
    co_await fabric->sim_->delay(at - fabric->sim_->now());
    fabric->settle_progress();
    fabric->links_[index]->capacity_scale = scale;
    fabric->reschedule();
    co_await fabric->sim_->delay(dur);
    fabric->settle_progress();
    fabric->links_[index]->capacity_scale = 1.0;
    fabric->reschedule();
  }(this, link.index, start, duration, multiplier));
}

void Fabric::set_dropped_transfers(std::vector<std::uint64_t> sequences) {
  std::sort(sequences.begin(), sequences.end());
  dropped_transfers_ = std::move(sequences);
}

void Fabric::add_flow(Flow* flow) {
  settle_progress();
  flows_.push_back(flow);
  for (std::size_t idx : flow->links) links_[idx]->active_flows += 1;
  reschedule();
}

void Fabric::remove_flow(Flow* flow) {
  auto it = std::find(flows_.begin(), flows_.end(), flow);
  assert(it != flows_.end());
  flows_.erase(it);
  for (std::size_t idx : flow->links) links_[idx]->active_flows -= 1;
}

void Fabric::settle_progress() {
  const SimTime now = sim_->now();
  const double dt = units::to_seconds(now - last_settle_);
  last_settle_ = now;
  if (dt <= 0.0) return;
  for (Flow* flow : flows_) {
    flow->remaining_bytes -= flow->rate_bps * dt;
  }
}

void Fabric::recompute_rates() {
  // Max-min fair allocation (progressive water filling).  Repeatedly find
  // the most constrained link, fix the fair share of its unfixed flows, and
  // remove that capacity from the system.
  for (Flow* flow : flows_) {
    flow->rate_fixed = false;
    flow->rate_bps = 0.0;
  }
  std::vector<double> residual(links_.size());
  std::vector<std::size_t> unfixed(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    residual[i] = links_[i]->effective_rate();
    unfixed[i] = 0;
  }
  for (Flow* flow : flows_) {
    for (std::size_t idx : flow->links) unfixed[idx] += 1;
  }

  std::size_t remaining_flows = flows_.size();
  while (remaining_flows > 0) {
    double min_share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (unfixed[i] == 0) continue;
      min_share = std::min(min_share, residual[i] / static_cast<double>(unfixed[i]));
    }
    assert(std::isfinite(min_share));
    // Fix every unfixed flow that crosses a bottleneck link at min_share.
    bool fixed_any = false;
    for (Flow* flow : flows_) {
      if (flow->rate_fixed) continue;
      bool bottlenecked = false;
      for (std::size_t idx : flow->links) {
        if (unfixed[idx] > 0 &&
            residual[idx] / static_cast<double>(unfixed[idx]) <= min_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      flow->rate_fixed = true;
      flow->rate_bps = min_share;
      fixed_any = true;
      --remaining_flows;
      for (std::size_t idx : flow->links) {
        residual[idx] -= min_share;
        if (residual[idx] < 0.0) residual[idx] = 0.0;
        unfixed[idx] -= 1;
      }
    }
    assert(fixed_any && "water-filling must make progress");
    if (!fixed_any) break;  // defensive: avoid an infinite loop in release builds
  }
}

void Fabric::reschedule() {
  // Complete flows that have drained (tolerate sub-byte residue from the
  // floating-point progress integration).
  std::vector<Flow*> finished;
  for (Flow* flow : flows_) {
    if (flow->remaining_bytes <= 0.5) finished.push_back(flow);
  }
  for (Flow* flow : finished) {
    remove_flow(flow);
    flow->done.set();
  }

  recompute_rates();

  if (flows_.empty()) {
    ++timer_token_;  // invalidate any armed timer
    return;
  }

  double min_eta_sec = std::numeric_limits<double>::infinity();
  for (Flow* flow : flows_) {
    // Flows crossing a down link have rate 0 and no ETA; the capacity
    // window's closing edge re-settles and re-arms for them.
    if (flow->rate_bps <= 0.0) continue;
    min_eta_sec = std::min(min_eta_sec, flow->remaining_bytes / flow->rate_bps);
  }
  if (!std::isfinite(min_eta_sec)) {
    ++timer_token_;  // every active flow is stalled; nothing to time out
    return;
  }
  const SimTime eta = std::max<SimTime>(1, units::from_seconds(min_eta_sec));
  arm_timer(sim_->now() + eta);
}

void Fabric::arm_timer(SimTime at) {
  const std::uint64_t token = ++timer_token_;
  sim_->spawn([](Fabric* fabric, SimTime fire_at, std::uint64_t tok) -> sim::Task<void> {
    co_await fabric->sim_->delay(fire_at - fabric->sim_->now());
    if (tok != fabric->timer_token_) co_return;  // superseded
    fabric->settle_progress();
    fabric->reschedule();
  }(this, at, token));
}

}  // namespace shmcaffe::net
