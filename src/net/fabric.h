// Bandwidth-accurate network fabric model for the discrete-event simulation.
//
// The fabric is a set of directed links (capacity in bytes/second).  A
// transfer moves `bytes` over a path of links and completes when the last
// byte arrives.  Two sharing disciplines are provided:
//
//  * kMaxMinFair (default): all concurrent transfers progress simultaneously;
//    rates are the max-min fair allocation over the links they cross.  This
//    matches how InfiniBand HCAs multiplex concurrent RDMA flows and is the
//    model used for the paper's experiments.
//  * kFifoSerial (ablation): each link serves one transfer at a time in FIFO
//    order (store-and-forward per link).
//
// Every transfer additionally pays a fixed per-message latency
// (options.message_latency) modelling propagation plus protocol processing,
// and data moves at `capacity * efficiency` (protocol efficiency; the paper
// reports 96% of the 7 GB/s FDR HCA ceiling).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace shmcaffe::net {

enum class SharingModel { kMaxMinFair, kFifoSerial };

struct FabricOptions {
  SharingModel sharing = SharingModel::kMaxMinFair;
  /// Fixed per-transfer latency (propagation + protocol processing).
  SimTime message_latency = 2 * units::kMicrosecond;
  /// Fraction of nominal link capacity achievable by payload data.
  double efficiency = 0.957;
};

/// Identifies a directed link within one Fabric.
struct LinkId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// Cumulative per-link accounting for utilisation reports.
struct LinkStats {
  std::string name;
  double capacity_bps = 0.0;
  std::int64_t bytes_carried = 0;
  std::int64_t transfers = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, FabricOptions options = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// Adds a directed link with the given nominal capacity (bytes/second).
  LinkId add_link(std::string name, double capacity_bytes_per_sec);

  /// Convenience: a full-duplex endpoint is a (tx, rx) pair of links.
  struct Endpoint {
    LinkId tx;
    LinkId rx;
  };
  Endpoint add_endpoint(const std::string& name, double capacity_bytes_per_sec);

  // --- fault injection -----------------------------------------------------

  /// Schedules a capacity window on `link`: during [start, start+duration)
  /// the link's usable rate is `capacity * efficiency * multiplier`
  /// (0 = link down; flows on it stall until the window closes; in-flight
  /// progress is settled at both edges).  Windows on the same link must not
  /// overlap.  Call before or during the run; `start` is absolute sim time.
  void schedule_capacity_window(LinkId link, SimTime start, SimTime duration,
                                double multiplier);

  /// Declares control/data transfers (by global transfer sequence number,
  /// counted from 0 in `transfer` call order) lost once: each listed
  /// transfer pays a retransmit — a second message latency plus a second
  /// full payload movement.
  void set_dropped_transfers(std::vector<std::uint64_t> sequences);

  /// Transfers issued so far (the next transfer gets this sequence number).
  [[nodiscard]] std::uint64_t transfer_count() const { return next_transfer_seq_; }

  /// Moves `bytes` across `path` (in order); completes when fully delivered.
  /// A zero-byte transfer still pays the per-message latency (control ops).
  ///
  /// Fixed-arity overloads exist because GCC 12 rejects initializer-list
  /// temporaries inside `co_await` operands ("array used as initializer");
  /// call sites pass links as plain arguments instead of `{a, b}`.
  [[nodiscard]] SHMCAFFE_BLOCKS sim::Task<void> transfer(std::vector<LinkId> path,
                                                         std::int64_t bytes);
  [[nodiscard]] SHMCAFFE_BLOCKS sim::Task<void> transfer(LinkId a, std::int64_t bytes);
  [[nodiscard]] SHMCAFFE_BLOCKS sim::Task<void> transfer(LinkId a, LinkId b, std::int64_t bytes);
  [[nodiscard]] SHMCAFFE_BLOCKS sim::Task<void> transfer(LinkId a, LinkId b, LinkId c,
                                                         std::int64_t bytes);

  [[nodiscard]] const LinkStats& stats(LinkId link) const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }
  [[nodiscard]] const FabricOptions& options() const { return options_; }

 private:
  struct Link;
  struct Flow;

  void add_flow(Flow* flow);
  void remove_flow(Flow* flow);
  /// Settles elapsed progress, completes finished flows, recomputes the
  /// max-min rates, and re-arms the completion timer.
  void reschedule();
  void settle_progress();
  void recompute_rates();
  void arm_timer(SimTime at);

  [[nodiscard]] sim::Task<void> transfer_fair(std::vector<LinkId> path, std::int64_t bytes,
                                              int attempts);
  [[nodiscard]] sim::Task<void> transfer_fifo(std::vector<LinkId> path, std::int64_t bytes,
                                              int attempts);

  sim::Simulation* sim_;
  FabricOptions options_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Flow*> flows_;  // active max-min flows, insertion order
  SimTime last_settle_ = 0;
  std::uint64_t timer_token_ = 0;
  std::uint64_t next_transfer_seq_ = 0;
  std::vector<std::uint64_t> dropped_transfers_;  // sorted
};

}  // namespace shmcaffe::net
