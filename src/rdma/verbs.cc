#include "rdma/verbs.h"

#include <cassert>

namespace shmcaffe::rdma {

Device::Device(sim::Simulation& sim, net::Fabric& fabric, std::string name,
               double bandwidth_bytes_per_sec)
    : sim_(&sim), fabric_(&fabric), name_(std::move(name)) {
  endpoint_ = fabric_->add_endpoint(name_, bandwidth_bytes_per_sec);
}

MemoryRegion ProtectionDomain::register_memory(std::int64_t length) {
  assert(length > 0);
  MemoryRegion mr;
  mr.addr = next_addr_;
  mr.length = length;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  next_addr_ += static_cast<std::uint64_t>(length) + 0x1000;  // guard gap
  regions_.emplace(mr.rkey, mr);
  return mr;
}

void ProtectionDomain::deregister_memory(const MemoryRegion& mr) {
  regions_.erase(mr.rkey);
}

void ProtectionDomain::check_remote_access(std::uint32_t rkey, std::int64_t offset,
                                           std::int64_t len) const {
  const auto it = regions_.find(rkey);
  if (it == regions_.end()) {
    throw AccessError("remote access with invalid rkey " + std::to_string(rkey));
  }
  const MemoryRegion& mr = it->second;
  if (offset < 0 || len < 0 || offset + len > mr.length) {
    throw AccessError("remote access out of bounds: offset=" + std::to_string(offset) +
                      " len=" + std::to_string(len) +
                      " region_length=" + std::to_string(mr.length));
  }
}

QueuePair::QueuePair(Device& local, ProtectionDomain& remote_pd)
    : local_(&local), remote_pd_(&remote_pd) {}

sim::Task<void> QueuePair::rdma_write(std::uint32_t rkey, std::int64_t offset,
                                      std::int64_t len) {
  remote_pd_->check_remote_access(rkey, offset, len);
  // Data flows local.tx -> remote.rx; completion when the last byte lands.
  co_await local_->fabric().transfer(local_->tx(), remote().rx(), len);
}

sim::Task<void> QueuePair::rdma_read(std::uint32_t rkey, std::int64_t offset,
                                     std::int64_t len) {
  remote_pd_->check_remote_access(rkey, offset, len);
  // The READ request is a small wire message to the responder, then data
  // flows remote.tx -> local.rx.  The request cost is one message latency
  // (charged by the zero-byte transfer) on the request path.
  co_await local_->fabric().transfer(local_->tx(), remote().rx(), 0);
  co_await local_->fabric().transfer(remote().tx(), local_->rx(), len);
}

std::size_t DatagramService::attach(Device& device) {
  Mailbox box;
  box.device = &device;
  box.queue = std::make_unique<sim::Channel<Datagram>>(*sim_, 1024);
  mailboxes_.push_back(std::move(box));
  return mailboxes_.size() - 1;
}

sim::Task<void> DatagramService::send_to(std::size_t from, std::size_t to, Datagram dg) {
  assert(from < mailboxes_.size() && to < mailboxes_.size());
  dg.source = from;
  Device& src = *mailboxes_[from].device;
  Device& dst = *mailboxes_[to].device;
  co_await src.fabric().transfer(src.tx(), dst.rx(), kWireBytes);
  co_await mailboxes_[to].queue->push(dg);
}

sim::Task<Datagram> DatagramService::recv(std::size_t index) {
  assert(index < mailboxes_.size());
  return mailboxes_[index].queue->pop();
}

}  // namespace shmcaffe::rdma
