// Verbs-like RDMA layer on top of the fabric model.
//
// This mirrors the slice of InfiniBand verbs that the Soft Memory Box uses:
//
//  * Device            — an HCA attached to the fabric (full-duplex endpoint)
//  * ProtectionDomain  — owns registered MemoryRegions and their rkeys
//  * MemoryRegion      — a registered buffer; remote access requires a valid
//                        rkey and in-bounds [offset, offset+len)
//  * QueuePair         — a connected pair of devices supporting one-sided
//                        RDMA READ/WRITE
//  * DatagramService   — an RDS-like reliable datagram mailbox per device,
//                        used for control messages (the paper's SMB derives
//                        its control path from the Linux RDS module)
//
// Completion semantics are collapsed into task completion: `co_await
// qp.rdma_write(...)` resumes when the HCA would have raised the work
// completion.  Only sizes travel through the simulation; payload bytes live
// in the functional SMB, not here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "net/fabric.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace shmcaffe::rdma {

/// Thrown on protection violations (bad rkey, out-of-bounds access).
class AccessError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An HCA attached to the fabric.
class Device {
 public:
  Device(sim::Simulation& sim, net::Fabric& fabric, std::string name,
         double bandwidth_bytes_per_sec);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::LinkId tx() const { return endpoint_.tx; }
  [[nodiscard]] net::LinkId rx() const { return endpoint_.rx; }
  [[nodiscard]] net::Fabric& fabric() const { return *fabric_; }
  [[nodiscard]] sim::Simulation& simulation() const { return *sim_; }

 private:
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  std::string name_;
  net::Fabric::Endpoint endpoint_;
};

/// A registered memory region.  `addr` is a virtual address within the
/// owning protection domain's address space (sizes-only simulation).
struct MemoryRegion {
  std::uint64_t addr = 0;
  std::int64_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
};

/// Owns memory registrations for one device.
class ProtectionDomain {
 public:
  explicit ProtectionDomain(Device& device) : device_(&device) {}

  /// Registers a region of `length` bytes; addresses are assigned
  /// sequentially in this PD's virtual space.
  MemoryRegion register_memory(std::int64_t length);

  /// Invalidates a region; later remote access with its rkey fails.
  void deregister_memory(const MemoryRegion& mr);

  /// Validates a remote access of [offset, offset+len) under `rkey`.
  /// Throws AccessError on violation.
  void check_remote_access(std::uint32_t rkey, std::int64_t offset, std::int64_t len) const;

  [[nodiscard]] Device& device() const { return *device_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

 private:
  Device* device_;
  std::uint64_t next_addr_ = 0x1000;
  std::uint32_t next_key_ = 1;
  std::map<std::uint32_t, MemoryRegion> regions_;  // by rkey
};

/// A reliably-connected queue pair between a local and a remote device.
/// One-sided operations validate against the remote protection domain.
class QueuePair {
 public:
  QueuePair(Device& local, ProtectionDomain& remote_pd);

  /// RDMA WRITE of `len` bytes into remote region `rkey` at `offset`.
  [[nodiscard]] sim::Task<void> rdma_write(std::uint32_t rkey, std::int64_t offset,
                                           std::int64_t len);

  /// RDMA READ of `len` bytes from remote region `rkey` at `offset`.
  [[nodiscard]] sim::Task<void> rdma_read(std::uint32_t rkey, std::int64_t offset,
                                          std::int64_t len);

  [[nodiscard]] Device& local() const { return *local_; }
  [[nodiscard]] Device& remote() const { return remote_pd_->device(); }

 private:
  Device* local_;
  ProtectionDomain* remote_pd_;
};

/// A small control datagram (RDS-style).  Fields are opaque to this layer.
struct Datagram {
  std::uint32_t opcode = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  /// Index of the sending service, filled in by send_to for replies.
  std::size_t source = 0;
};

/// RDS-like reliable datagram mailboxes.  Each device registering with the
/// service gets an index; datagrams are ~256 bytes on the wire plus the
/// fabric's message latency.
class DatagramService {
 public:
  explicit DatagramService(sim::Simulation& sim) : sim_(&sim) {}

  /// Registers a device; returns its mailbox index.
  std::size_t attach(Device& device);

  /// Sends `dg` from mailbox `from` to mailbox `to` over the fabric.
  [[nodiscard]] sim::Task<void> send_to(std::size_t from, std::size_t to, Datagram dg);

  /// Receives the next datagram addressed to mailbox `index`.
  [[nodiscard]] sim::Task<Datagram> recv(std::size_t index);

  [[nodiscard]] std::size_t mailbox_count() const { return mailboxes_.size(); }

  /// Wire size charged per datagram.
  static constexpr std::int64_t kWireBytes = 256;

 private:
  struct Mailbox {
    Device* device;
    std::unique_ptr<sim::Channel<Datagram>> queue;
  };
  sim::Simulation* sim_;
  std::vector<Mailbox> mailboxes_;
};

}  // namespace shmcaffe::rdma
