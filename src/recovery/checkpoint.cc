#include "recovery/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace shmcaffe::recovery {

namespace {

/// "SCK1" little-endian: ShmCaffe ChecKpoint, format 1.
constexpr std::uint32_t kMagic = 0x31'4b'43'53;
constexpr std::uint32_t kFormatVersion = 1;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* raw = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), raw, raw + sizeof(T));
}

template <typename T>
void append_vector(std::vector<std::uint8_t>& out, const std::vector<T>& values) {
  append_pod(out, static_cast<std::uint32_t>(values.size()));
  const auto* raw = reinterpret_cast<const std::uint8_t*>(values.data());
  out.insert(out.end(), raw, raw + values.size() * sizeof(T));
}

/// Bounds-checked sequential reader over the slot bytes.  Every read checks
/// the remaining span first, so hostile counts/lengths cannot walk past the
/// buffer — failure is sticky and surfaces as decode() returning nullopt.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool read(T& out) {
    if (failed_ || bytes_.size() - offset_ < sizeof(T)) {
      failed_ = true;
      return false;
    }
    std::memcpy(&out, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool read_vector(std::vector<T>& out) {
    std::uint32_t count = 0;
    if (!read(count)) return false;
    const std::size_t bytes_needed = static_cast<std::size_t>(count) * sizeof(T);
    if (bytes_.size() - offset_ < bytes_needed) {
      failed_ = true;
      return false;
    }
    out.resize(count);
    std::memcpy(out.data(), bytes_.data() + offset_, bytes_needed);
    offset_ += bytes_needed;
    return true;
  }

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] bool exhausted() const { return !failed_ && offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const TrainCheckpoint& checkpoint) {
  std::vector<std::uint8_t> out;
  append_pod(out, kMagic);
  append_pod(out, kFormatVersion);
  append_pod(out, checkpoint.sequence);
  append_pod(out, checkpoint.seed);
  append_pod(out, checkpoint.owner_solver_iteration);
  append_vector(out, checkpoint.worker_iterations);
  append_vector(out, checkpoint.global_weights);
  append_vector(out, checkpoint.owner_params);
  append_vector(out, checkpoint.owner_momentum);
  append_pod(out, fnv1a(out));
  return out;
}

std::optional<TrainCheckpoint> decode_checkpoint(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  std::uint32_t magic = 0;
  std::uint32_t format = 0;
  TrainCheckpoint checkpoint;
  if (!reader.read(magic) || magic != kMagic) return std::nullopt;
  if (!reader.read(format) || format != kFormatVersion) return std::nullopt;
  if (!reader.read(checkpoint.sequence)) return std::nullopt;
  if (!reader.read(checkpoint.seed)) return std::nullopt;
  if (!reader.read(checkpoint.owner_solver_iteration)) return std::nullopt;
  if (!reader.read_vector(checkpoint.worker_iterations)) return std::nullopt;
  if (!reader.read_vector(checkpoint.global_weights)) return std::nullopt;
  if (!reader.read_vector(checkpoint.owner_params)) return std::nullopt;
  if (!reader.read_vector(checkpoint.owner_momentum)) return std::nullopt;
  const std::size_t payload_size = reader.offset();
  std::uint64_t stored_checksum = 0;
  if (!reader.read(stored_checksum)) return std::nullopt;
  if (!reader.exhausted()) return std::nullopt;  // trailing garbage = torn slot
  if (fnv1a(bytes.subspan(0, payload_size)) != stored_checksum) return std::nullopt;
  return checkpoint;
}

CheckpointStore::CheckpointStore(std::string directory) {
  if (directory.empty()) {
    throw std::invalid_argument("checkpoint directory must not be empty");
  }
  slots_[0] = directory + "/checkpoint-a.bin";
  slots_[1] = directory + "/checkpoint-b.bin";
}

const std::string& CheckpointStore::slot_path(int slot) const { return slots_[slot]; }

namespace {

std::optional<TrainCheckpoint> load_slot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  const std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                        std::istreambuf_iterator<char>());
  return decode_checkpoint(bytes);
}

}  // namespace

void CheckpointStore::save(const TrainCheckpoint& checkpoint) const {
  // Overwrite the slot that does NOT hold the latest valid checkpoint: a
  // crash mid-write tears only the obsolete slot.
  const std::optional<TrainCheckpoint> a = load_slot(slots_[0]);
  const std::optional<TrainCheckpoint> b = load_slot(slots_[1]);
  int target = 0;
  if (a.has_value() && (!b.has_value() || a->sequence >= b->sequence)) target = 1;
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  std::ofstream out(slots_[target], std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open checkpoint slot for writing: " + slots_[target]);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw std::runtime_error("checkpoint write failed: " + slots_[target]);
}

std::optional<TrainCheckpoint> CheckpointStore::load_latest() const {
  std::optional<TrainCheckpoint> a = load_slot(slots_[0]);
  std::optional<TrainCheckpoint> b = load_slot(slots_[1]);
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return a->sequence >= b->sequence ? a : b;
}

}  // namespace shmcaffe::recovery
