#include "recovery/integrity.h"

#include <algorithm>
#include <cstdio>

#include "smb/server.h"

namespace shmcaffe::recovery {

const char* to_string(IntegrityAction action) {
  switch (action) {
    case IntegrityAction::kCorruptionInjected: return "corruption_injected";
    case IntegrityAction::kCorruptionDetected: return "corruption_detected";
    case IntegrityAction::kCorruptionRepaired: return "corruption_repaired";
    case IntegrityAction::kTornWriteApplied: return "torn_write_applied";
  }
  __builtin_unreachable();
}

std::vector<IntegrityEvent> integrity_schedule(const fault::FaultPlan& plan,
                                               const IntegrityPolicy& policy) {
  std::vector<IntegrityEvent> schedule;
  const auto expand = [&](int target, std::uint64_t marker, IntegrityAction first) {
    schedule.push_back(IntegrityEvent{first, target, marker});
    if (!policy.verify_on_read) return;
    schedule.push_back(IntegrityEvent{IntegrityAction::kCorruptionDetected, target, marker});
    if (policy.read_repair) {
      schedule.push_back(IntegrityEvent{IntegrityAction::kCorruptionRepaired, target, marker});
    }
  };
  for (const fault::FaultEvent& event : plan.events()) {
    switch (event.kind) {
      case fault::FaultKind::kSegmentCorruption:
        expand(event.target, event.sequence, IntegrityAction::kCorruptionInjected);
        break;
      case fault::FaultKind::kTornWrite:
        expand(event.target, smb::SmbServer::kTornWriteMarkerBit | event.sequence,
               IntegrityAction::kTornWriteApplied);
        break;
      default:
        break;
    }
  }
  return schedule;
}

std::vector<IntegrityEvent> executed_integrity(std::span<const IntegrityEvent> planned,
                                               const IntegrityOutcome& outcome) {
  const auto contains = [](const std::vector<std::uint64_t>& markers, std::uint64_t marker) {
    return std::find(markers.begin(), markers.end(), marker) != markers.end();
  };
  std::vector<IntegrityEvent> executed;
  for (const IntegrityEvent& event : planned) {
    bool keep = false;
    switch (event.action) {
      case IntegrityAction::kCorruptionInjected:
        keep = contains(outcome.injected, event.marker);
        break;
      case IntegrityAction::kCorruptionDetected:
        keep = contains(outcome.detected, event.marker);
        break;
      case IntegrityAction::kCorruptionRepaired:
        keep = contains(outcome.repaired, event.marker);
        break;
      case IntegrityAction::kTornWriteApplied:
        keep = contains(outcome.torn_applied, event.marker);
        break;
    }
    if (keep) executed.push_back(event);
  }
  return executed;
}

std::uint64_t integrity_fingerprint(std::span<const IntegrityEvent> events) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t word) {
    hash ^= word;
    hash *= 0x100000001b3ULL;
  };
  for (const IntegrityEvent& event : events) {
    mix(static_cast<std::uint64_t>(event.action));
    mix(static_cast<std::uint64_t>(event.target));
    mix(event.marker);
  }
  return hash;
}

std::string describe(std::span<const IntegrityEvent> events) {
  std::string out;
  char line[128];
  for (const IntegrityEvent& event : events) {
    std::snprintf(line, sizeof(line), "%s target=%d marker=%llu\n", to_string(event.action),
                  event.target, static_cast<unsigned long long>(event.marker));
    out += line;
  }
  return out;
}

}  // namespace shmcaffe::recovery
