#include "recovery/schedule.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace shmcaffe::recovery {

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kSmbFailover: return "smb_failover";
    case RecoveryAction::kWorkerReadmit: return "worker_readmit";
  }
  return "unknown";
}

std::vector<RecoveryEvent> recovery_schedule(const fault::FaultPlan& plan,
                                             const RecoveryPolicy& policy) {
  std::vector<RecoveryEvent> failovers;
  // Earliest crash per worker: a worker fail-stops once, so later crash
  // events for the same target are unreachable and must not schedule a
  // second re-admission.
  std::map<int, std::int64_t> first_crash;
  for (const fault::FaultEvent& event : plan.events()) {
    switch (event.kind) {
      case fault::FaultKind::kServerFailStop:
        if (policy.smb_failover) {
          RecoveryEvent recovery;
          recovery.action = RecoveryAction::kSmbFailover;
          recovery.target = event.target;
          recovery.at_seconds = event.start_seconds + policy.failover_seconds;
          failovers.push_back(recovery);
        }
        break;
      case fault::FaultKind::kWorkerCrash:
        if (policy.respawn_crashed) {
          const auto it = first_crash.find(event.target);
          if (it == first_crash.end() || event.iteration < it->second) {
            first_crash[event.target] = event.iteration;
          }
        }
        break;
      default:
        break;
    }
  }
  std::sort(failovers.begin(), failovers.end(),
            [](const RecoveryEvent& a, const RecoveryEvent& b) {
              if (a.at_seconds != b.at_seconds) return a.at_seconds < b.at_seconds;
              return a.target < b.target;
            });
  std::vector<RecoveryEvent> readmits;
  for (const auto& [worker, iteration] : first_crash) {
    RecoveryEvent recovery;
    recovery.action = RecoveryAction::kWorkerReadmit;
    recovery.target = worker;
    recovery.at_iteration = iteration;
    recovery.at_seconds = policy.readmit_delay_seconds;
    readmits.push_back(recovery);
  }
  std::sort(readmits.begin(), readmits.end(),
            [](const RecoveryEvent& a, const RecoveryEvent& b) {
              if (a.at_iteration != b.at_iteration) return a.at_iteration < b.at_iteration;
              return a.target < b.target;
            });
  std::vector<RecoveryEvent> schedule = std::move(failovers);
  schedule.insert(schedule.end(), readmits.begin(), readmits.end());
  return schedule;
}

std::uint64_t schedule_fingerprint(std::span<const RecoveryEvent> events) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t word) {
    hash ^= word;
    hash *= 0x100000001b3ULL;
  };
  for (const RecoveryEvent& event : events) {
    mix(static_cast<std::uint64_t>(event.action));
    mix(static_cast<std::uint64_t>(event.target));
    mix(static_cast<std::uint64_t>(event.at_iteration));
  }
  return hash;
}

std::string describe(std::span<const RecoveryEvent> events) {
  std::string out;
  char line[128];
  for (const RecoveryEvent& event : events) {
    std::snprintf(line, sizeof(line), "%s target=%d iter=%lld at=%.3fs\n",
                  to_string(event.action), event.target,
                  static_cast<long long>(event.at_iteration), event.at_seconds);
    out += line;
  }
  return out;
}

}  // namespace shmcaffe::recovery
