// The recovery schedule: one pure function from (FaultPlan, RecoveryPolicy)
// to the ordered list of recovery actions a run will take.
//
// Both training stacks — the functional thread trainer and the discrete-
// event simulator — derive their recovery behaviour from this single
// function, so "the same plan produces the identical recovery schedule in
// both stacks" holds by construction; each stack additionally fingerprints
// the actions it *actually executed*, and tests assert the executed
// fingerprints match the planned one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "fault/fault_plan.h"

namespace shmcaffe::recovery {

/// What the run does about injected failures.  All defaults preserve the
/// pre-recovery behaviour (failures degrade, nothing heals) except SMB
/// failover, which is a no-op without replicas and therefore safe-on.
struct RecoveryPolicy {
  /// Fail over a replicated SMB when its primary fail-stops.
  bool smb_failover = true;
  /// Respawn a replacement for a crashed worker (re-admission).
  bool respawn_crashed = false;
  /// Modelled failure-detection + promotion latency (sim timing).
  double failover_seconds = 0.25;
  /// Modelled respawn + W_g adoption latency before the replacement's first
  /// iteration (sim timing; the functional stack pays real attach cost).
  double readmit_delay_seconds = 0.5;
};

enum class RecoveryAction : std::uint8_t {
  kSmbFailover,    ///< promote a backup replica of SMB server `target`
  kWorkerReadmit,  ///< re-admit worker `target` after its crash
};

[[nodiscard]] const char* to_string(RecoveryAction action);

/// One planned (or executed) recovery action.
struct RecoveryEvent {
  RecoveryAction action = RecoveryAction::kSmbFailover;
  int target = -1;              ///< server index (failover) / worker rank (readmit)
  std::int64_t at_iteration = -1;  ///< crash iteration for readmits; -1 for failovers
  /// Timing model only (failover detection time / readmit delay); excluded
  /// from the fingerprint so functional wall time cannot perturb it.
  double at_seconds = 0.0;

  friend bool operator==(const RecoveryEvent&, const RecoveryEvent&) = default;
};

/// Expands a fault plan into the recovery actions `policy` mandates:
/// a failover per fail-stopped server, a re-admission per crashed worker
/// (earliest crash only — a worker dies once).  Deterministically ordered:
/// failovers by (start time, target), then readmits by (iteration, target).
[[nodiscard]] SHMCAFFE_DETERMINISTIC std::vector<RecoveryEvent> recovery_schedule(
    const fault::FaultPlan& plan, const RecoveryPolicy& policy);

/// Order-sensitive FNV-1a digest over (action, target, at_iteration) —
/// identical for a planned schedule and a faithfully executed one.
[[nodiscard]] SHMCAFFE_DETERMINISTIC std::uint64_t schedule_fingerprint(
    std::span<const RecoveryEvent> events);

/// Human-readable one-line-per-event rendering.
[[nodiscard]] std::string describe(std::span<const RecoveryEvent> events);

}  // namespace shmcaffe::recovery
