// Replicated Soft Memory Box: a primary/backup ensemble of SmbServers.
//
// The paper's SMB is a single passive memory node (§III-B) — a single point
// of failure it leaves to future work (§V).  ReplicatedSmb closes that gap
// without touching worker code: it implements the same SmbService surface
// over N functional SmbServers, so the Fig. 6 two-thread protocol keeps
// running across a primary fail-stop.
//
//   * Mirrored mutations.  Every float-path mutation (write / accumulate /
//     copy) fans out to all live replicas under one exclusive mirror mutex,
//     stamped with an OpTag (ensemble id + strictly increasing sequence).
//     The single total order keeps replica contents bit-identical; the tag
//     makes the replay of the last in-flight op after a failover idempotent
//     (a replica that already applied it drops the replay — see
//     SmbServerStats::replays_dropped).
//   * Reads via the active replica.  Reads, version queries and counter
//     loads go to the active (primary) replica only; a fail-stop there
//     promotes the next live replica and retries.
//   * Service-epoch fencing.  Every failover bumps the service epoch
//     (src/recovery/epoch.h).  Logical segments remember the epoch they
//     were last resolved under; a stale segment is re-resolved (probe
//     attach on the survivors, the Fig. 2 slave path) before any further
//     use.  Handles issued to callers are *logical* and survive failovers.
//   * Version waits without the lock.  wait_version_at_least resolves the
//     active physical handle under the mirror mutex but blocks outside it,
//     so a blocked waiter never starves the mirror path; a fail-stop
//     mid-wait triggers failover and the wait resumes on the survivor with
//     the remaining deadline (not a fresh one).
//
// Lock ranking: the mirror mutex is rank 150 (recovery.replica_mirror) —
// above the progress-board sweep (100), below every per-server lock the
// fan-out enters (segment 200, table 210).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "recovery/epoch.h"
#include "smb/server.h"

namespace shmcaffe::recovery {

class ReplicatedSmb final : public smb::SmbService {
 public:
  /// The ensemble does not own the replicas; `replicas[0]` starts as the
  /// active primary.  At least one replica is required.
  explicit ReplicatedSmb(std::vector<smb::SmbServer*> replicas);
  ReplicatedSmb(const ReplicatedSmb&) = delete;
  ReplicatedSmb& operator=(const ReplicatedSmb&) = delete;

  // --- SmbService surface (logical handles, failover-transparent) --------
  smb::Handle create_floats(smb::ShmKey key, std::size_t count) override;
  smb::Handle attach_floats(smb::ShmKey key, std::size_t count = 0) override;
  smb::Handle create_counters(smb::ShmKey key, std::size_t count) override;
  smb::Handle attach_counters(smb::ShmKey key, std::size_t count = 0) override;
  void release(smb::Handle handle) override;
  [[nodiscard]] std::size_t size(smb::Handle handle) const override;

  void read(smb::Handle handle, std::span<float> dst, std::size_t offset = 0) const override;
  void write(smb::Handle handle, std::span<const float> src, std::size_t offset = 0) override;
  void accumulate(smb::Handle src, smb::Handle dst) override;
  void copy_segment(smb::Handle src, smb::Handle dst) override;

  [[nodiscard]] std::int64_t load(smb::Handle handle, std::size_t index) const override;
  void store(smb::Handle handle, std::size_t index, std::int64_t value) override;
  std::int64_t fetch_add(smb::Handle handle, std::size_t index, std::int64_t delta) override;
  [[nodiscard]] std::int64_t min_value(smb::Handle handle) const override;
  [[nodiscard]] std::int64_t max_value(smb::Handle handle) const override;
  [[nodiscard]] std::int64_t sum(smb::Handle handle) const override;

  [[nodiscard]] std::uint64_t version(smb::Handle handle) const override;
  std::optional<std::uint64_t> wait_version_at_least(
      smb::Handle handle, std::uint64_t min_version,
      std::chrono::nanoseconds timeout) const override;

  // --- recovery observability --------------------------------------------
  [[nodiscard]] ServiceEpoch service_epoch() const;
  /// Index of the current primary in the constructor's replica list.
  [[nodiscard]] int active_replica() const;
  [[nodiscard]] int live_replica_count() const;
  [[nodiscard]] std::uint64_t failover_count() const;
  /// Replica indices (constructor order) that fail-stopped while active —
  /// one entry per failover, in failover order.  A backup's death never
  /// appears here (no promotion happens).
  [[nodiscard]] std::vector<int> failover_log() const;

 private:
  struct LogicalSegment {
    smb::ShmKey key = 0;
    bool counters = false;
    std::size_t count = 0;
    int refcount = 0;
    /// Epoch the physical handles were last validated under; 0 = never.
    ServiceEpoch resolved_service_epoch = 0;
    /// Per-replica physical handle (meaningful only for live replicas).
    std::vector<smb::Handle> physical;
  };

  /// Applies the mutation to one replica under the given tag.
  using MutationFn = std::function<void(std::size_t replica, smb::OpTag tag)>;

  smb::Handle create_segment(smb::ShmKey key, std::size_t count, bool counters);
  smb::Handle attach_segment(smb::ShmKey key, std::size_t count, bool counters);
  [[nodiscard]] LogicalSegment& segment_locked(smb::Handle handle) const
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Throws SmbUnavailable when every replica has fail-stopped.
  void require_live_locked() const SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Marks replica `index` dead; if it was the primary, promotes the next
  /// live replica and bumps the service epoch (a failover).
  void mark_failed_locked(std::size_t index) const SHMCAFFE_REQUIRES(mirror_mutex_);
  void mark_failed_locked(const smb::SmbServer* server) const
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Re-resolves a segment whose cached epoch is stale: probes the segment
  /// on every live replica (attach + release) and stamps the new epoch.
  void ensure_resolved_locked(LogicalSegment& segment) const
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Fans a tagged float-path mutation out to all live replicas; on a
  /// fail-stop mid-fan-out, fails over and replays the op under the same
  /// tag (survivors that already applied it drop the replay).
  void mirror_mutation_locked(std::initializer_list<LogicalSegment*> segments,
                              const MutationFn& op) SHMCAFFE_REQUIRES(mirror_mutex_);

  /// Tag identity of this ensemble's mirror agent (OpTag::writer).
  static constexpr std::uint64_t kMirrorWriter = 1;

  std::vector<smb::SmbServer*> replicas_ SHMCAFFE_UNGUARDED;  // immutable after ctor

  /// Guards everything below; rank 150 (recovery.replica_mirror).  Mutable
  /// because const reads may discover a fail-stop and perform a failover.
  mutable common::OrderedMutex mirror_mutex_{"recovery.replica_mirror",
                                             common::lockrank::kReplicaMirror};
  mutable std::vector<bool> live_ SHMCAFFE_GUARDED_BY(mirror_mutex_);
  mutable std::size_t active_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  mutable ServiceEpoch service_epoch_ SHMCAFFE_GUARDED_BY(mirror_mutex_) =
      kInitialServiceEpoch;
  mutable std::uint64_t failovers_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  mutable std::vector<int> failover_log_ SHMCAFFE_GUARDED_BY(mirror_mutex_);
  std::uint64_t mirror_seq_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  std::uint64_t next_logical_key_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 1;
  mutable std::unordered_map<std::uint64_t, LogicalSegment> segments_
      SHMCAFFE_GUARDED_BY(mirror_mutex_);
  std::unordered_map<smb::ShmKey, std::uint64_t> key_to_logical_
      SHMCAFFE_GUARDED_BY(mirror_mutex_);
};

}  // namespace shmcaffe::recovery
