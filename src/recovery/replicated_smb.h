// Replicated Soft Memory Box: a primary/backup ensemble of SmbServers.
//
// The paper's SMB is a single passive memory node (§III-B) — a single point
// of failure it leaves to future work (§V).  ReplicatedSmb closes that gap
// without touching worker code: it implements the same SmbService surface
// over N functional SmbServers, so the Fig. 6 two-thread protocol keeps
// running across a primary fail-stop.
//
//   * Mirrored mutations.  Every float-path mutation (write / accumulate /
//     copy) fans out to all live replicas under one exclusive mirror mutex,
//     stamped with an OpTag (ensemble id + strictly increasing sequence).
//     The single total order keeps replica contents bit-identical; the tag
//     makes the replay of the last in-flight op after a failover idempotent
//     (a replica that already applied it drops the replay — see
//     SmbServerStats::replays_dropped).
//   * Reads via the active replica.  Reads, version queries and counter
//     loads go to the active (primary) replica only; a fail-stop there
//     promotes the next live replica and retries.
//   * Service-epoch fencing.  Every failover bumps the service epoch
//     (src/recovery/epoch.h).  Logical segments remember the epoch they
//     were last resolved under; a stale segment is re-resolved (probe
//     attach on the survivors, the Fig. 2 slave path) before any further
//     use.  Handles issued to callers are *logical* and survive failovers.
//   * Version waits without the lock.  wait_version_at_least resolves the
//     active physical handle under the mirror mutex but blocks outside it,
//     so a blocked waiter never starves the mirror path; a fail-stop
//     mid-wait triggers failover and the wait resumes on the survivor with
//     the remaining deadline (not a fresh one).
//   * Read-repair.  When a replica's checksum verification throws
//     SmbCorruption (integrity layer, smb/server.h), the ensemble reads
//     every replica's copy, votes by content among the verify-clean ones,
//     rewrites the divergent copies with the winner, and retries.  A repair
//     triggered mid-mutation reuses the in-flight OpTag when the winner had
//     already applied the op, so the retry replays idempotently.  A segment
//     with no clean replica is unrepairable: the SmbCorruption surfaces and
//     the trainer degrades to a checkpoint rollback instead of aborting.
//   * Scrubbing.  scrub() walks every float segment on every live replica
//     during quiesce/checkpoint windows, repairing what it finds before the
//     damage is ever read.
//
// Lock ranking: the mirror mutex is rank 150 (recovery.replica_mirror) —
// above the progress-board sweep (100), below every per-server lock the
// fan-out enters (segment 200, table 210).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "recovery/epoch.h"
#include "smb/server.h"

namespace shmcaffe::recovery {

class ReplicatedSmb final : public smb::SmbService {
 public:
  /// The ensemble does not own the replicas; `replicas[0]` starts as the
  /// active primary.  At least one replica is required.  `read_repair`
  /// controls what a checksum mismatch does: vote-and-rewrite (on) or
  /// propagate the SmbCorruption to the caller (off — the
  /// detected-but-unrepaired degraded mode).
  explicit ReplicatedSmb(std::vector<smb::SmbServer*> replicas, bool read_repair = true);
  ReplicatedSmb(const ReplicatedSmb&) = delete;
  ReplicatedSmb& operator=(const ReplicatedSmb&) = delete;

  // --- SmbService surface (logical handles, failover-transparent) --------
  smb::Handle create_floats(smb::ShmKey key, std::size_t count) override;
  smb::Handle attach_floats(smb::ShmKey key, std::size_t count = 0) override;
  smb::Handle create_counters(smb::ShmKey key, std::size_t count) override;
  smb::Handle attach_counters(smb::ShmKey key, std::size_t count = 0) override;
  void release(smb::Handle handle) override;
  [[nodiscard]] std::size_t size(smb::Handle handle) const override;

  void read(smb::Handle handle, std::span<float> dst, std::size_t offset = 0) const override;
  /// Zero-copy read from the *active* replica: pin-time verification plus
  /// the same failover/read-repair loop as read().  The returned view pins
  /// the active replica's storage epoch; it stays valid even across a
  /// later fail-stop of that replica (the epoch is process memory kept
  /// alive by the view, and a fail-stopped server's storage is never
  /// mutated again).
  [[nodiscard]] SHMCAFFE_PIN_ESCAPE smb::PinnedFloats read_pinned(
      smb::Handle handle, std::size_t count, std::size_t offset = 0) const override;
  void write(smb::Handle handle, std::span<const float> src, std::size_t offset = 0) override;
  void accumulate(smb::Handle src, smb::Handle dst) override;
  void copy_segment(smb::Handle src, smb::Handle dst) override;
  /// Caller-tagged mutations (idempotent client retry): the caller's tag —
  /// not a fresh mirror tag — is fanned out to every replica, so a resend
  /// of the same tag is dropped ensemble-wide.
  void write_tagged(smb::Handle handle, std::span<const float> src, std::size_t offset,
                    smb::OpTag tag) override;
  void accumulate_tagged(smb::Handle src, smb::Handle dst, smb::OpTag tag) override;

  [[nodiscard]] std::int64_t load(smb::Handle handle, std::size_t index) const override;
  void store(smb::Handle handle, std::size_t index, std::int64_t value) override;
  std::int64_t fetch_add(smb::Handle handle, std::size_t index, std::int64_t delta) override;
  [[nodiscard]] std::int64_t min_value(smb::Handle handle) const override;
  [[nodiscard]] std::int64_t max_value(smb::Handle handle) const override;
  [[nodiscard]] std::int64_t sum(smb::Handle handle) const override;

  [[nodiscard]] std::uint64_t version(smb::Handle handle) const override;
  SHMCAFFE_BLOCKS std::optional<std::uint64_t> wait_version_at_least(
      smb::Handle handle, std::uint64_t min_version,
      std::chrono::nanoseconds timeout) const override;

  // --- recovery observability --------------------------------------------
  [[nodiscard]] ServiceEpoch service_epoch() const;
  /// Index of the current primary in the constructor's replica list.
  [[nodiscard]] int active_replica() const;
  [[nodiscard]] int live_replica_count() const;
  [[nodiscard]] std::uint64_t failover_count() const;
  /// Replica indices (constructor order) that fail-stopped while active —
  /// one entry per failover, in failover order.  A backup's death never
  /// appears here (no promotion happens).
  [[nodiscard]] std::vector<int> failover_log() const;

  // --- data integrity ------------------------------------------------------

  /// Walks every float logical segment, verifying all live replicas and
  /// vote-repairing what the walk finds (when read-repair is on).  The
  /// background scrubber entry, called from quiesce/checkpoint windows.
  /// Returns the number of segments repaired this pass.  Blocks: the walk
  /// reads and rewrites whole replica segments under the ensemble mutex.
  SHMCAFFE_BLOCKS std::uint64_t scrub();

  /// Injects a silent corruption into the *active* replica's copy of the
  /// float segment under `key` (the kSegmentCorruption fault hook).
  /// Returns the number of chunks poisoned.
  std::size_t inject_corruption(smb::ShmKey key, std::uint64_t marker, int bit_flips);

  /// Distinct corruption markers detected anywhere in the ensemble.
  [[nodiscard]] std::vector<std::uint64_t> detected_markers() const;
  [[nodiscard]] std::uint64_t corruptions_detected() const;
  /// Markers healed by replica vote, ascending.
  [[nodiscard]] std::vector<std::uint64_t> repaired_markers() const;
  /// Replica copies rewritten by read-repair (a marker repaired on two
  /// replicas counts twice).
  [[nodiscard]] std::uint64_t repairs() const;
  [[nodiscard]] std::uint64_t scrub_passes() const;

 private:
  struct LogicalSegment {
    smb::ShmKey key = 0;
    bool counters = false;
    std::size_t count = 0;
    int refcount = 0;
    /// Epoch the physical handles were last validated under; 0 = never.
    ServiceEpoch resolved_service_epoch = 0;
    /// Per-replica physical handle (meaningful only for live replicas).
    std::vector<smb::Handle> physical;
  };

  /// Applies the mutation to one replica under the given tag.
  using MutationFn = std::function<void(std::size_t replica, smb::OpTag tag)>;

  smb::Handle create_segment(smb::ShmKey key, std::size_t count, bool counters);
  smb::Handle attach_segment(smb::ShmKey key, std::size_t count, bool counters);
  [[nodiscard]] LogicalSegment& segment_locked(smb::Handle handle) const
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Throws SmbUnavailable when every replica has fail-stopped.
  void require_live_locked() const SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Marks replica `index` dead; if it was the primary, promotes the next
  /// live replica and bumps the service epoch (a failover).
  void mark_failed_locked(std::size_t index) const SHMCAFFE_REQUIRES(mirror_mutex_);
  void mark_failed_locked(const smb::SmbServer* server) const
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Re-resolves a segment whose cached epoch is stale: probes the segment
  /// on every live replica (attach + release) and stamps the new epoch.
  void ensure_resolved_locked(LogicalSegment& segment) const
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Fans a tagged float-path mutation out to all live replicas; on a
  /// fail-stop mid-fan-out, fails over and replays the op under the same
  /// tag (survivors that already applied it drop the replay).
  void mirror_mutation_locked(std::initializer_list<LogicalSegment*> segments,
                              const MutationFn& op) SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Same, under a caller-supplied tag.  A checksum mismatch on one replica
  /// triggers a vote-and-repair of the touched segments, then a retry of
  /// the whole fan-out under the same tag.
  void mirror_mutation_tagged_locked(std::initializer_list<LogicalSegment*> segments,
                                     const MutationFn& op, smb::OpTag tag)
      SHMCAFFE_REQUIRES(mirror_mutex_);
  /// Repairs `segment` by content vote among the verify-clean replicas and
  /// rewrites every divergent copy with the winner.  When called from a
  /// mutation fan-out, `inflight`/`applied` say which replicas already
  /// applied the in-flight op: the vote is then restricted to those (their
  /// content includes the op) and the rewrite reuses the in-flight tag so
  /// the retry replays idempotently; if the op landed only on corrupt
  /// copies the segment is unrepairable.  Returns false when no clean
  /// majority exists (the caller degrades to checkpoint rollback).
  bool vote_and_repair_locked(LogicalSegment& segment, const smb::OpTag* inflight,
                              const std::vector<bool>* applied) const
      SHMCAFFE_REQUIRES(mirror_mutex_);

  /// Tag identity of this ensemble's mirror agent (OpTag::writer).
  static constexpr std::uint64_t kMirrorWriter = 1;

  std::vector<smb::SmbServer*> replicas_ SHMCAFFE_UNGUARDED;  // immutable after ctor
  const bool read_repair_;

  /// Guards everything below; rank 150 (recovery.replica_mirror).  Mutable
  /// because const reads may discover a fail-stop and perform a failover.
  mutable common::OrderedMutex mirror_mutex_{"recovery.replica_mirror",
                                             common::lockrank::kReplicaMirror};
  mutable std::vector<bool> live_ SHMCAFFE_GUARDED_BY(mirror_mutex_);
  mutable std::size_t active_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  mutable ServiceEpoch service_epoch_ SHMCAFFE_GUARDED_BY(mirror_mutex_) =
      kInitialServiceEpoch;
  mutable std::uint64_t failovers_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  mutable std::vector<int> failover_log_ SHMCAFFE_GUARDED_BY(mirror_mutex_);
  std::uint64_t mirror_seq_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  /// Mutable like the failover state: const reads may discover corruption
  /// and repair it.
  mutable std::uint64_t repairs_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  mutable std::uint64_t scrub_passes_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 0;
  mutable std::vector<std::uint64_t> repaired_markers_ SHMCAFFE_GUARDED_BY(mirror_mutex_);
  std::uint64_t next_logical_key_ SHMCAFFE_GUARDED_BY(mirror_mutex_) = 1;
  mutable std::unordered_map<std::uint64_t, LogicalSegment> segments_
      SHMCAFFE_GUARDED_BY(mirror_mutex_);
  std::unordered_map<smb::ShmKey, std::uint64_t> key_to_logical_
      SHMCAFFE_GUARDED_BY(mirror_mutex_);
};

}  // namespace shmcaffe::recovery
