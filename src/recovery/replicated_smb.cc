#include "recovery/replicated_smb.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace shmcaffe::recovery {

using smb::Handle;
using smb::OpTag;
using smb::ShmKey;
using smb::SmbError;
using smb::SmbNotFound;
using smb::SmbUnavailable;

ReplicatedSmb::ReplicatedSmb(std::vector<smb::SmbServer*> replicas, bool read_repair)
    : replicas_(std::move(replicas)), read_repair_(read_repair) {
  if (replicas_.empty()) throw SmbError("replicated SMB needs at least one replica");
  for (const smb::SmbServer* replica : replicas_) {
    if (replica == nullptr) throw SmbError("replicated SMB replica must not be null");
  }
  live_.assign(replicas_.size(), true);
}

void ReplicatedSmb::require_live_locked() const SHMCAFFE_REQUIRES(mirror_mutex_) {
  SHMCAFFE_ASSERT_HELD(mirror_mutex_);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    // A replica that fail-stopped since we last talked to it is noticed
    // here, so failovers happen eagerly instead of on the next throw.
    if (live_[i] && replicas_[i]->failed()) mark_failed_locked(i);
  }
  if (std::none_of(live_.begin(), live_.end(), [](bool alive) { return alive; })) {
    throw SmbUnavailable("all SMB replicas have fail-stopped");
  }
}

void ReplicatedSmb::mark_failed_locked(std::size_t index) const
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  SHMCAFFE_ASSERT_HELD(mirror_mutex_);
  if (!live_[index]) return;
  live_[index] = false;
  if (index != active_) return;  // a backup died: no failover needed
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!live_[i]) continue;
    active_ = i;
    service_epoch_ = next_service_epoch(service_epoch_);
    failovers_ += 1;
    failover_log_.push_back(static_cast<int>(index));
    return;
  }
  // No survivor to promote; require_live_locked() reports the total loss.
}

void ReplicatedSmb::mark_failed_locked(const smb::SmbServer* server) const
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i] == server) {
      mark_failed_locked(i);
      return;
    }
  }
}

ReplicatedSmb::LogicalSegment& ReplicatedSmb::segment_locked(Handle handle) const
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  SHMCAFFE_ASSERT_HELD(mirror_mutex_);
  const auto it = segments_.find(handle.access_key);
  if (it == segments_.end()) {
    throw SmbError("unknown logical access key " + std::to_string(handle.access_key));
  }
  return it->second;
}

void ReplicatedSmb::ensure_resolved_locked(LogicalSegment& segment) const
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  SHMCAFFE_ASSERT_HELD(mirror_mutex_);
  if (epoch_is_current(segment.resolved_service_epoch, service_epoch_)) return;
  // Fenced: the segment was last resolved under an older epoch.  Probe the
  // segment on every survivor (the Fig. 2 attach-by-SHM-key slave path) to
  // confirm the canonical physical handles are still backed, then stamp the
  // new epoch.  The long-lived physical handles themselves stay canonical —
  // a functional SmbServer never re-keys live segments.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!live_[i]) continue;
    try {
      const Handle probe = segment.counters
                               ? replicas_[i]->attach_counters(segment.key, segment.count)
                               : replicas_[i]->attach_floats(segment.key, segment.count);
      replicas_[i]->release(probe);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(i);
    }
  }
  require_live_locked();
  segment.resolved_service_epoch = service_epoch_;
}

Handle ReplicatedSmb::create_segment(ShmKey key, std::size_t count, bool counters) {
  std::scoped_lock lock(mirror_mutex_);
  require_live_locked();
  if (key_to_logical_.contains(key)) {
    throw SmbError("SHM key already exists: " + std::to_string(key));
  }
  LogicalSegment segment;
  segment.key = key;
  segment.counters = counters;
  segment.count = count;
  segment.refcount = 1;
  segment.physical.assign(replicas_.size(), Handle{});
  try {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!live_[i]) continue;
      try {
        segment.physical[i] = counters ? replicas_[i]->create_counters(key, count)
                                       : replicas_[i]->create_floats(key, count);
      } catch (const SmbUnavailable&) {
        mark_failed_locked(i);
      }
    }
    require_live_locked();
  } catch (...) {
    // Misuse (capacity, duplicate key) or total loss: roll back the partial
    // creation so the ensemble stays consistent across replicas.
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!live_[i] || !segment.physical[i].valid()) continue;
      try {
        replicas_[i]->release(segment.physical[i]);
      } catch (const SmbError&) {
      }
    }
    throw;
  }
  segment.resolved_service_epoch = service_epoch_;
  const std::uint64_t logical = next_logical_key_++;
  key_to_logical_.emplace(key, logical);
  segments_.emplace(logical, std::move(segment));
  return Handle{logical};
}

Handle ReplicatedSmb::attach_segment(ShmKey key, std::size_t count, bool counters) {
  std::scoped_lock lock(mirror_mutex_);
  require_live_locked();
  const auto it = key_to_logical_.find(key);
  if (it == key_to_logical_.end()) {
    throw SmbNotFound("no segment with SHM key " + std::to_string(key));
  }
  LogicalSegment& segment = segments_.at(it->second);
  if (segment.counters != counters) throw SmbError("segment kind mismatch");
  if (count != 0 && count != segment.count) {
    throw SmbError("segment size mismatch: requested " + std::to_string(count) +
                   ", exists with " + std::to_string(segment.count));
  }
  segment.refcount += 1;
  return Handle{it->second};
}

Handle ReplicatedSmb::create_floats(ShmKey key, std::size_t count) {
  return create_segment(key, count, /*counters=*/false);
}

Handle ReplicatedSmb::attach_floats(ShmKey key, std::size_t count) {
  return attach_segment(key, count, /*counters=*/false);
}

Handle ReplicatedSmb::create_counters(ShmKey key, std::size_t count) {
  return create_segment(key, count, /*counters=*/true);
}

Handle ReplicatedSmb::attach_counters(ShmKey key, std::size_t count) {
  return attach_segment(key, count, /*counters=*/true);
}

void ReplicatedSmb::release(Handle handle) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  if (segment.refcount <= 0) {
    throw SmbError("double release of segment with SHM key " + std::to_string(segment.key));
  }
  segment.refcount -= 1;
  if (segment.refcount > 0) return;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!live_[i] || !segment.physical[i].valid()) continue;
    try {
      replicas_[i]->release(segment.physical[i]);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(i);
    }
  }
  key_to_logical_.erase(segment.key);
  segments_.erase(handle.access_key);
}

std::size_t ReplicatedSmb::size(Handle handle) const {
  std::scoped_lock lock(mirror_mutex_);
  return segment_locked(handle).count;
}

void ReplicatedSmb::read(Handle handle, std::span<float> dst, std::size_t offset) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      // mirror_mutex_ stays held across the replica call: failover and
      // read-repair mutate active_/live_ mid-loop, and a racing mutation
      // could otherwise land between the failed attempt and the retry.
      // lint:allow-next-line(no-blocking-under-lock)
      replicas_[active_]->read(segment.physical[active_], dst, offset);
      return;
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    } catch (const smb::SmbCorruption&) {
      // The active copy failed checksum verification.  Vote among the
      // verify-clean replicas, rewrite the bad copy, and retry the read;
      // unrepairable (no clean copy) or repair-off propagates the error so
      // the trainer can degrade to a checkpoint rollback.
      if (!read_repair_ || !vote_and_repair_locked(segment, nullptr, nullptr)) throw;
    }
  }
}

smb::PinnedFloats ReplicatedSmb::read_pinned(Handle handle, std::size_t count,
                                             std::size_t offset) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      // Checksum verification happens inside the replica at pin time; the
      // ensemble charges zero copy bytes (the view aliases replica memory).
      // Pinning under mirror_mutex_ is safe against pin-then-lock: the pin
      // targets the replica's own segment mutex, never the ensemble's, and
      // the mutex must be held so active_ cannot fail over mid-pin.
      // lint:allow-next-line(no-blocking-under-lock,pin-lifetime)
      return replicas_[active_]->read_pinned(segment.physical[active_], count, offset);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    } catch (const smb::SmbCorruption&) {
      // Same degraded-mode contract as read(): vote-repair then re-pin, or
      // propagate when no clean copy exists.
      if (!read_repair_ || !vote_and_repair_locked(segment, nullptr, nullptr)) throw;
    }
  }
}

void ReplicatedSmb::mirror_mutation_locked(std::initializer_list<LogicalSegment*> segments,
                                           const MutationFn& op)
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  mirror_mutation_tagged_locked(segments, op, OpTag{kMirrorWriter, ++mirror_seq_});
}

void ReplicatedSmb::mirror_mutation_tagged_locked(
    std::initializer_list<LogicalSegment*> segments, const MutationFn& op, OpTag tag)
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  SHMCAFFE_ASSERT_HELD(mirror_mutex_);
  std::vector<bool> applied(replicas_.size(), false);
  for (;;) {
    require_live_locked();
    for (LogicalSegment* segment : segments) ensure_resolved_locked(*segment);
    bool any_failure = false;
    std::exception_ptr corruption;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!live_[i]) continue;
      try {
        op(i, tag);
        applied[i] = true;
      } catch (const SmbUnavailable&) {
        mark_failed_locked(i);
        any_failure = true;
      } catch (const smb::SmbCorruption&) {
        // Replica `i` refused the op because a touched segment failed
        // verification (the op was NOT applied there — verification runs
        // before the tag is recorded).  Keep fanning out so the clean
        // replicas apply the op first; the repair below then only has to
        // rewrite the copies that actually refused.
        corruption = std::current_exception();
        any_failure = true;
      }
    }
    if (corruption != nullptr) {
      // Vote-and-repair every touched segment, then replay the whole
      // fan-out under the same tag: replicas that applied it (or were
      // repaired under it) drop the replay.  An unrepairable segment
      // rethrows and the mutation surfaces as corrupt to the trainer.
      if (!read_repair_) std::rethrow_exception(corruption);
      for (LogicalSegment* segment : segments) {
        if (!vote_and_repair_locked(*segment, &tag, &applied)) {
          std::rethrow_exception(corruption);
        }
      }
    }
    if (!any_failure) return;
    // A replica fail-stopped (or was repaired) mid-fan-out: fail over and
    // replay the in-flight op under the *same* tag.  Survivors that already
    // applied it drop the replay (idempotence), so W_g is never
    // double-updated.
  }
}

void ReplicatedSmb::write(Handle handle, std::span<const float> src, std::size_t offset) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  // Holding mirror_mutex_ across the fan-out IS the mirror protocol: it
  // serialises every mutation into the ensemble total order (OpTag seq).
  // lint:allow-next-line(no-blocking-under-lock)
  mirror_mutation_locked({&segment}, [&](std::size_t i, OpTag tag) {
    replicas_[i]->write_tagged(segment.physical[i], src, offset, tag);
  });
}

void ReplicatedSmb::accumulate(Handle src, Handle dst) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& source = segment_locked(src);
  LogicalSegment& dest = segment_locked(dst);
  // Same mirror-total-order argument as write().
  // lint:allow-next-line(no-blocking-under-lock)
  mirror_mutation_locked({&source, &dest}, [&](std::size_t i, OpTag tag) {
    replicas_[i]->accumulate_tagged(source.physical[i], dest.physical[i], tag);
  });
}

void ReplicatedSmb::copy_segment(Handle src, Handle dst) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& source = segment_locked(src);
  LogicalSegment& dest = segment_locked(dst);
  // Same mirror-total-order argument as write().
  // lint:allow-next-line(no-blocking-under-lock)
  mirror_mutation_locked({&source, &dest}, [&](std::size_t i, OpTag tag) {
    replicas_[i]->copy_segment_tagged(source.physical[i], dest.physical[i], tag);
  });
}

std::int64_t ReplicatedSmb::load(Handle handle, std::size_t index) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      return replicas_[active_]->load(segment.physical[active_], index);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    }
  }
}

void ReplicatedSmb::store(Handle handle, std::size_t index, std::int64_t value) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    bool any_failure = false;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!live_[i]) continue;
      try {
        replicas_[i]->store(segment.physical[i], index, value);
      } catch (const SmbUnavailable&) {
        mark_failed_locked(i);
        any_failure = true;
      }
    }
    if (!any_failure) return;  // store is idempotent: a replay is harmless
  }
}

std::int64_t ReplicatedSmb::fetch_add(Handle handle, std::size_t index, std::int64_t delta) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    std::optional<std::int64_t> result;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!live_[i]) continue;
      try {
        const std::int64_t prior = replicas_[i]->fetch_add(segment.physical[i], index, delta);
        // Mirrored mutations are totally ordered by the mirror mutex, so
        // every replica returns the same prior value; keep the first.
        if (!result.has_value()) result = prior;
      } catch (const SmbUnavailable&) {
        mark_failed_locked(i);
      }
    }
    // Retry only if *no* replica applied the op — fetch_add is not
    // idempotent, so a partial application must not be replayed.
    if (result.has_value()) return *result;
  }
}

std::int64_t ReplicatedSmb::min_value(Handle handle) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      return replicas_[active_]->min_value(segment.physical[active_]);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    }
  }
}

std::int64_t ReplicatedSmb::max_value(Handle handle) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      return replicas_[active_]->max_value(segment.physical[active_]);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    }
  }
}

std::int64_t ReplicatedSmb::sum(Handle handle) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      return replicas_[active_]->sum(segment.physical[active_]);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    }
  }
}

std::uint64_t ReplicatedSmb::version(Handle handle) const {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  for (;;) {
    require_live_locked();
    ensure_resolved_locked(segment);
    try {
      return replicas_[active_]->version(segment.physical[active_]);
    } catch (const SmbUnavailable&) {
      mark_failed_locked(active_);
    }
  }
}

std::optional<std::uint64_t> ReplicatedSmb::wait_version_at_least(
    Handle handle, std::uint64_t min_version, std::chrono::nanoseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    smb::SmbServer* server = nullptr;
    Handle physical;
    {
      std::scoped_lock lock(mirror_mutex_);
      require_live_locked();
      LogicalSegment& segment = segment_locked(handle);
      ensure_resolved_locked(segment);
      server = replicas_[active_];
      physical = segment.physical[active_];
    }
    // Block OUTSIDE the mirror mutex: the write that satisfies this wait
    // must be able to enter the fan-out path concurrently.
    const auto remaining =
        std::max(std::chrono::nanoseconds::zero(),
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     deadline - std::chrono::steady_clock::now()));
    try {
      return server->wait_version_at_least(physical, min_version, remaining);
    } catch (const SmbUnavailable&) {
      // Primary died mid-wait: fail over and resume the wait on the
      // survivor with whatever deadline budget is left.
      std::scoped_lock lock(mirror_mutex_);
      mark_failed_locked(server);
      require_live_locked();
    }
  }
}

ServiceEpoch ReplicatedSmb::service_epoch() const {
  std::scoped_lock lock(mirror_mutex_);
  return service_epoch_;
}

int ReplicatedSmb::active_replica() const {
  std::scoped_lock lock(mirror_mutex_);
  return static_cast<int>(active_);
}

int ReplicatedSmb::live_replica_count() const {
  std::scoped_lock lock(mirror_mutex_);
  return static_cast<int>(std::count(live_.begin(), live_.end(), true));
}

std::uint64_t ReplicatedSmb::failover_count() const {
  std::scoped_lock lock(mirror_mutex_);
  return failovers_;
}

std::vector<int> ReplicatedSmb::failover_log() const {
  std::scoped_lock lock(mirror_mutex_);
  return failover_log_;
}

void ReplicatedSmb::write_tagged(Handle handle, std::span<const float> src, std::size_t offset,
                                 OpTag tag) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& segment = segment_locked(handle);
  if (!tag.tagged()) tag = OpTag{kMirrorWriter, ++mirror_seq_};
  // Same mirror-total-order argument as write().
  // lint:allow-next-line(no-blocking-under-lock)
  mirror_mutation_tagged_locked(
      {&segment},
      [&](std::size_t i, OpTag t) { replicas_[i]->write_tagged(segment.physical[i], src, offset, t); },
      tag);
}

void ReplicatedSmb::accumulate_tagged(Handle src, Handle dst, OpTag tag) {
  std::scoped_lock lock(mirror_mutex_);
  LogicalSegment& source = segment_locked(src);
  LogicalSegment& dest = segment_locked(dst);
  if (!tag.tagged()) tag = OpTag{kMirrorWriter, ++mirror_seq_};
  // Same mirror-total-order argument as write().
  // lint:allow-next-line(no-blocking-under-lock)
  mirror_mutation_tagged_locked(
      {&source, &dest},
      [&](std::size_t i, OpTag t) {
        replicas_[i]->accumulate_tagged(source.physical[i], dest.physical[i], t);
      },
      tag);
}

bool ReplicatedSmb::vote_and_repair_locked(LogicalSegment& segment, const OpTag* inflight,
                                           const std::vector<bool>* applied) const
    SHMCAFFE_REQUIRES(mirror_mutex_) {
  SHMCAFFE_ASSERT_HELD(mirror_mutex_);
  if (segment.counters) return true;  // counter segments carry no checksums
  const std::size_t n = replicas_.size();

  // Verify every live copy; remember which are clean and which markers the
  // corrupt ones were poisoned with.
  std::vector<bool> clean(n, false);
  std::vector<std::uint64_t> markers;
  for (std::size_t i = 0; i < n; ++i) {
    if (!live_[i]) continue;
    try {
      const auto bad = replicas_[i]->verify_segment(segment.physical[i]);
      clean[i] = bad.empty();
      for (const auto& chunk : bad) {
        if (chunk.marker != 0 &&
            std::find(markers.begin(), markers.end(), chunk.marker) == markers.end()) {
          markers.push_back(chunk.marker);
        }
      }
    } catch (const SmbUnavailable&) {
      mark_failed_locked(i);
    }
  }

  // If the in-flight mutation already landed on some replica, only copies
  // that applied it may vote: a winner drawn from the others would silently
  // roll the op back while the caller's retry gets replay-dropped.  No clean
  // applied copy -> the op survives only on corrupt copies -> unrepairable.
  const bool applied_any = inflight != nullptr && applied != nullptr &&
                           [&] {
                             for (std::size_t i = 0; i < n; ++i) {
                               if (live_[i] && (*applied)[i]) return true;
                             }
                             return false;
                           }();
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (!live_[i] || !clean[i]) continue;
    if (applied_any && !(*applied)[i]) continue;
    candidates.push_back(i);
  }
  if (candidates.empty()) return false;  // no trustworthy copy: degrade to rollback

  // Vote by content equality among the candidates; ties go to the
  // lowest-index group (first seen wins under the strict > below).
  std::vector<std::vector<float>> contents(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    contents[c].resize(segment.count);
    // The vote must read a frozen ensemble: a concurrent mutation would
    // split the electorate.  lint:allow-next-line(no-blocking-under-lock)
    replicas_[candidates[c]]->read_raw(segment.physical[candidates[c]], contents[c]);
  }
  std::size_t best = 0;
  std::size_t best_votes = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::size_t votes = 0;
    for (std::size_t d = 0; d < candidates.size(); ++d) {
      if (contents[d] == contents[c]) votes += 1;
    }
    if (votes > best_votes) {
      best_votes = votes;
      best = c;
    }
  }
  const std::vector<float>& winner = contents[best];

  // Rewrite every live copy that diverges from the winner.  Replicas that
  // already recorded the in-flight tag would drop a tagged rewrite, so they
  // are healed with an untagged write; replicas that have not applied the op
  // are rewritten under the in-flight tag itself, so the caller's replay is
  // dropped there instead of double-applying on top of the healed content.
  std::vector<float> content(segment.count);
  for (std::size_t i = 0; i < n; ++i) {
    if (!live_[i]) continue;
    try {
      // Repair rewrites must land before any new mutation enters the
      // mirror order — all three replica calls stay under mirror_mutex_.
      // lint:allow-next-line(no-blocking-under-lock)
      replicas_[i]->read_raw(segment.physical[i], content);
      const bool healthy = clean[i] && content == winner;
      if (applied_any && !(*applied)[i]) {
        // lint:allow-next-line(no-blocking-under-lock)
        replicas_[i]->write_tagged(segment.physical[i], winner, 0, *inflight);
        if (!healthy) repairs_ += 1;
      } else if (!healthy) {
        // lint:allow-next-line(no-blocking-under-lock)
        replicas_[i]->write_tagged(segment.physical[i], winner, 0, OpTag{});
        repairs_ += 1;
      }
    } catch (const SmbUnavailable&) {
      mark_failed_locked(i);
    }
  }
  for (std::uint64_t marker : markers) {
    if (std::find(repaired_markers_.begin(), repaired_markers_.end(), marker) ==
        repaired_markers_.end()) {
      repaired_markers_.push_back(marker);
    }
  }
  return true;
}

std::uint64_t ReplicatedSmb::scrub() {
  std::scoped_lock lock(mirror_mutex_);
  require_live_locked();
  scrub_passes_ += 1;
  // Walk in ascending SHM-key order so scrub behaviour (and the repair
  // counts it produces) is deterministic across runs.
  std::vector<std::pair<ShmKey, std::uint64_t>> keys(key_to_logical_.begin(),
                                                     key_to_logical_.end());
  std::sort(keys.begin(), keys.end());
  std::uint64_t repaired = 0;
  for (const auto& [key, logical] : keys) {
    LogicalSegment& segment = segments_.at(logical);
    if (segment.counters) continue;
    ensure_resolved_locked(segment);
    bool any_bad = false;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!live_[i]) continue;
      try {
        if (!replicas_[i]->verify_segment(segment.physical[i]).empty()) any_bad = true;
      } catch (const SmbUnavailable&) {
        mark_failed_locked(i);
      }
    }
    if (!any_bad) continue;
    // An unrepairable segment is left as-is here (vote returns false): the
    // next read surfaces the SmbCorruption and the trainer rolls back.
    if (read_repair_ && vote_and_repair_locked(segment, nullptr, nullptr)) repaired += 1;
  }
  return repaired;
}

std::size_t ReplicatedSmb::inject_corruption(ShmKey key, std::uint64_t marker, int bit_flips) {
  std::scoped_lock lock(mirror_mutex_);
  require_live_locked();
  return replicas_[active_]->corrupt_floats(key, marker, bit_flips);
}

std::vector<std::uint64_t> ReplicatedSmb::detected_markers() const {
  std::scoped_lock lock(mirror_mutex_);
  std::vector<std::uint64_t> all;
  for (const smb::SmbServer* replica : replicas_) {
    for (std::uint64_t marker : replica->detected_markers()) {
      if (std::find(all.begin(), all.end(), marker) == all.end()) all.push_back(marker);
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::uint64_t ReplicatedSmb::corruptions_detected() const {
  return detected_markers().size();
}

std::vector<std::uint64_t> ReplicatedSmb::repaired_markers() const {
  std::scoped_lock lock(mirror_mutex_);
  std::vector<std::uint64_t> result = repaired_markers_;
  std::sort(result.begin(), result.end());
  return result;
}

std::uint64_t ReplicatedSmb::repairs() const {
  std::scoped_lock lock(mirror_mutex_);
  return repairs_;
}

std::uint64_t ReplicatedSmb::scrub_passes() const {
  std::scoped_lock lock(mirror_mutex_);
  return scrub_passes_;
}

}  // namespace shmcaffe::recovery
