// Crash-consistent training checkpoints (double-buffered).
//
// A checkpoint captures everything needed to resume distributed training
// with identical kAverageIterations accounting: the global weights W_g, the
// progress-board iteration counters, and the owner worker's solver state
// (parameters, momentum, iteration cursor) plus the run seed.  Checkpoints
// are raw float/int vectors — deliberately below the dl:: layer, so the
// recovery subsystem has no model dependency.
//
// Crash consistency comes from two independent mechanisms:
//   * Double buffering.  CheckpointStore alternates between two slot files
//     and always overwrites the *older* slot, so a crash mid-write can only
//     tear the slot being replaced — the previous checkpoint stays intact.
//   * Self-validation.  Every slot carries a magic, a format version, and a
//     trailing FNV-1a checksum over the payload; decode() rejects torn,
//     truncated or bit-rotted slots, and load_latest() returns the valid
//     slot with the highest sequence number.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace shmcaffe::recovery {

/// Trainer-facing checkpoint policy (wired through DistTrainOptions).
struct CheckpointConfig {
  /// Directory holding the two slot files; empty disables checkpointing.
  std::string directory;
  /// Snapshot every N owner iterations (<= 0 disables periodic snapshots).
  int interval_iterations = 0;
  /// Resume from the latest valid checkpoint in `directory` (if any).
  bool resume = false;
};

/// One crash-consistent snapshot of the distributed training state.
struct TrainCheckpoint {
  /// Strictly increasing per run; load_latest() picks the highest.
  std::uint64_t sequence = 0;
  /// Run seed, so a resume refuses checkpoints from a different run.
  std::uint64_t seed = 0;
  /// Owner (worker 0) solver iteration cursor at snapshot time.
  std::int64_t owner_solver_iteration = 0;
  /// Progress-board iteration counters, one per worker.
  std::vector<std::int64_t> worker_iterations;
  /// Global weights W_g as stored in the SMB.
  std::vector<float> global_weights;
  /// Owner worker's local parameters and solver momentum.
  std::vector<float> owner_params;
  std::vector<float> owner_momentum;

  friend bool operator==(const TrainCheckpoint&, const TrainCheckpoint&) = default;
};

/// Serialises a checkpoint (magic + version + payload + FNV-1a checksum).
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const TrainCheckpoint& checkpoint);

/// Strictly bounds-checked decode; nullopt on any malformation (bad magic,
/// truncation at any field boundary, checksum mismatch, trailing bytes).
[[nodiscard]] std::optional<TrainCheckpoint> decode_checkpoint(
    std::span<const std::uint8_t> bytes);

class CheckpointStore {
 public:
  /// `directory` must exist; the store manages exactly two slot files in it.
  explicit CheckpointStore(std::string directory);

  /// Writes `checkpoint` into the slot NOT holding the latest valid
  /// checkpoint, leaving the previous one untouched (crash window safety).
  void save(const TrainCheckpoint& checkpoint) const;

  /// The valid slot with the highest sequence, or nullopt if none decodes.
  [[nodiscard]] std::optional<TrainCheckpoint> load_latest() const;

  /// Slot file paths (for tests that simulate torn writes).
  [[nodiscard]] const std::string& slot_path(int slot) const;

 private:
  std::string slots_[2];
};

}  // namespace shmcaffe::recovery
