// Service-epoch fencing for the replicated SMB.
//
// Every failover bumps the ensemble's *service epoch*, a monotonically
// increasing generation counter.  Handles resolved under an older epoch are
// *stale*: the physical access keys they cached may point at a dead replica,
// so they must be re-resolved before use.  All epoch comparisons in the
// codebase go through the helpers below (enforced by the `no-naked-epoch`
// lint rule): raw `<` / `==` on epoch integers is how fencing bugs are
// born — an accidentally inverted comparison silently admits stale writers.
#pragma once

#include <cstdint>

namespace shmcaffe::recovery {

/// Generation counter of a replicated service; bumped on every failover.
using ServiceEpoch = std::uint64_t;

/// Epoch of a freshly created ensemble.  Zero is reserved as "never
/// resolved", so a default-constructed cached epoch is always stale.
inline constexpr ServiceEpoch kInitialServiceEpoch = 1;

/// True if a handle resolved at `seen` is still valid at `current`.
[[nodiscard]] constexpr bool epoch_is_current(ServiceEpoch seen, ServiceEpoch current) {
  return seen == current;
}

/// True if a handle resolved at `seen` must be re-resolved (fenced).
[[nodiscard]] constexpr bool epoch_is_stale(ServiceEpoch seen, ServiceEpoch current) {
  return !epoch_is_current(seen, current);
}

/// The epoch the ensemble enters after a failover from `current`.
[[nodiscard]] constexpr ServiceEpoch next_service_epoch(ServiceEpoch current) {
  return current + 1;
}

}  // namespace shmcaffe::recovery
