// The integrity schedule: one pure function from (FaultPlan, IntegrityPolicy)
// to the ordered list of integrity events a run is expected to produce.
//
// It is the data-plane sibling of recovery_schedule (schedule.h): both
// training stacks — the functional thread trainer and the discrete-event
// simulator — derive their expected integrity behaviour from this single
// function, then fingerprint what *actually executed* (which corruptions
// fired, which were detected by checksum verification, which were repaired
// by replica vote, which armed torn writes landed).  A faithfully executed
// run reproduces the planned fingerprint bit-for-bit, and the two stacks
// must agree with each other on the same plan.
//
// Every event is keyed by the fault's *marker* (fault/fault_plan.h): the
// plan-drawn nonzero identity a corruption stamps on the chunks it poisons.
// Detection and repair attribute themselves to markers, so the executed
// filter is a set-membership test — no timing enters the fingerprint.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "fault/fault_plan.h"

namespace shmcaffe::recovery {

/// What the run does about silent data corruption.  All defaults keep the
/// pre-integrity behaviour (no checksums, no verification) except repair
/// and scrubbing, which are no-ops until verification is switched on and
/// therefore safe-on.
struct IntegrityPolicy {
  /// Maintain per-chunk FNV-1a checksums on every SMB float segment.
  bool checksum_chunks = false;
  /// Verify checksums before serving reads / accumulating (detection).
  bool verify_on_read = false;
  /// On detection, read the peer replicas, vote, and rewrite the bad copy
  /// (ReplicatedSmb read-repair).  Without it a detected corruption
  /// surfaces to the trainer, which degrades to a checkpoint rollback.
  bool read_repair = true;
  /// Walk and verify all segments during checkpoint quiesce windows (and
  /// once at the end of training), repairing what the walk finds.
  bool scrub_on_checkpoint = true;
  /// Checksum granularity in floats (16 KiB chunks by default).
  std::size_t chunk_floats = 4096;
  /// Modelled cost of one replica repair (sim timing only).
  double sim_repair_seconds = 0.002;

  /// True when the integrity data path (checksums) is active at all.
  [[nodiscard]] bool enabled() const { return checksum_chunks || verify_on_read; }
};

enum class IntegrityAction : std::uint8_t {
  kCorruptionInjected,  ///< a kSegmentCorruption event fired on server `target`
  kCorruptionDetected,  ///< checksum verification caught the marker
  kCorruptionRepaired,  ///< replica vote rewrote the poisoned copy
  kTornWriteApplied,    ///< an armed kTornWrite reached its ordinal and fired
};

[[nodiscard]] const char* to_string(IntegrityAction action);

/// One planned (or executed) integrity event.
struct IntegrityEvent {
  IntegrityAction action = IntegrityAction::kCorruptionInjected;
  int target = -1;           ///< logical SMB server index
  std::uint64_t marker = 0;  ///< fault marker (torn writes: high bit set)

  friend bool operator==(const IntegrityEvent&, const IntegrityEvent&) = default;
};

/// The executed outcome of a run: which markers actually fired / were
/// detected / were repaired.  Both stacks fill one of these from their own
/// observability surfaces and filter the planned schedule through it.
struct IntegrityOutcome {
  std::vector<std::uint64_t> injected;      ///< corruption markers that fired
  std::vector<std::uint64_t> detected;      ///< markers caught by verification
  std::vector<std::uint64_t> repaired;      ///< markers healed by replica vote
  std::vector<std::uint64_t> torn_applied;  ///< torn-write markers that landed
};

/// Expands a fault plan into the integrity events `policy` mandates, in plan
/// order: every corruption contributes an injection, plus a detection if
/// verification is on, plus a repair if read-repair is also on; every torn
/// write contributes an application plus the same detection/repair pair.
[[nodiscard]] SHMCAFFE_DETERMINISTIC std::vector<IntegrityEvent> integrity_schedule(
    const fault::FaultPlan& plan, const IntegrityPolicy& policy);

/// Filters a planned schedule down to what actually executed: an event
/// survives iff its marker is in the outcome set matching its action.
/// Order (and therefore the fingerprint) is inherited from the plan, so the
/// functional and simulated stacks agree by construction when their
/// outcomes agree.
[[nodiscard]] SHMCAFFE_DETERMINISTIC std::vector<IntegrityEvent> executed_integrity(
    std::span<const IntegrityEvent> planned, const IntegrityOutcome& outcome);

/// Order-sensitive FNV-1a digest over (action, target, marker).
[[nodiscard]] SHMCAFFE_DETERMINISTIC std::uint64_t integrity_fingerprint(
    std::span<const IntegrityEvent> events);

/// Human-readable one-line-per-event rendering.
[[nodiscard]] std::string describe(std::span<const IntegrityEvent> events);

}  // namespace shmcaffe::recovery
