#include "elastic/membership.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "fault/fault_plan.h"

namespace shmcaffe::elastic {

const char* to_string(MembershipEventKind kind) {
  switch (kind) {
    case MembershipEventKind::kJoin: return "join";
    case MembershipEventKind::kDrain: return "drain";
  }
  return "unknown";
}

const char* to_string(MembershipAction action) {
  switch (action) {
    case MembershipAction::kWorkerJoin: return "worker_join";
    case MembershipAction::kWorkerDrain: return "worker_drain";
    case MembershipAction::kQuarantine: return "quarantine";
    case MembershipAction::kReadmitContributor: return "readmit_contributor";
    case MembershipAction::kEvict: return "evict";
    case MembershipAction::kShardRebalance: return "shard_rebalance";
  }
  return "unknown";
}

namespace {

bool event_order(const MembershipEvent& a, const MembershipEvent& b) {
  if (a.at_iteration != b.at_iteration) return a.at_iteration < b.at_iteration;
  return a.worker < b.worker;
}

std::vector<MembershipEvent> filtered_sorted(const std::vector<MembershipEvent>& events,
                                             MembershipEventKind kind) {
  std::vector<MembershipEvent> out;
  for (const MembershipEvent& event : events) {
    if (event.kind == kind) out.push_back(event);
  }
  std::sort(out.begin(), out.end(), event_order);
  return out;
}

}  // namespace

std::vector<MembershipEvent> MembershipPlan::joins() const {
  return filtered_sorted(events_, MembershipEventKind::kJoin);
}

std::vector<MembershipEvent> MembershipPlan::drains() const {
  return filtered_sorted(events_, MembershipEventKind::kDrain);
}

std::int64_t MembershipPlan::drain_iteration(int worker) const {
  std::int64_t at = -1;
  for (const MembershipEvent& event : events_) {
    if (event.kind != MembershipEventKind::kDrain || event.worker != worker) continue;
    if (at < 0 || event.at_iteration < at) at = event.at_iteration;
  }
  return at;
}

int MembershipPlan::capacity(int initial_workers) const {
  int capacity = initial_workers;
  for (const MembershipEvent& event : events_) {
    if (event.kind == MembershipEventKind::kJoin) {
      capacity = std::max(capacity, event.worker + 1);
    }
  }
  return capacity;
}

std::vector<MembershipChange> membership_schedule(const MembershipPlan* plan,
                                                  const fault::FaultPlan* faults,
                                                  const MembershipPolicy& policy,
                                                  int initial_workers) {
  std::vector<MembershipChange> transitions;
  if (plan != nullptr) {
    for (const MembershipEvent& event : plan->joins()) {
      // A join never reuses an initial rank's slot; out-of-range plans
      // derive nothing rather than corrupting the schedule.
      if (event.worker < initial_workers) continue;
      transitions.push_back(
          {MembershipAction::kWorkerJoin, event.worker, event.at_iteration});
    }
    for (const MembershipEvent& event : plan->drains()) {
      if (event.worker < 0 || event.worker >= initial_workers) continue;
      transitions.push_back(
          {MembershipAction::kWorkerDrain, event.worker, event.at_iteration});
    }
  }

  // Straggler chains: every injected stall long enough to trip the detector
  // is one planned staleness violation for its worker, in iteration order —
  // quarantine + readmit until the eviction threshold, then a single evict.
  if (policy.straggler_detection && faults != nullptr) {
    std::map<int, std::int64_t> first_crash;
    std::map<int, std::vector<fault::FaultEvent>> stalls;
    for (const fault::FaultEvent& event : faults->events()) {
      if (event.kind == fault::FaultKind::kWorkerCrash) {
        const auto it = first_crash.find(event.target);
        if (it == first_crash.end() || event.iteration < it->second) {
          first_crash[event.target] = event.iteration;
        }
      } else if (event.kind == fault::FaultKind::kWorkerStall &&
                 event.duration_seconds >= policy.quarantine_stall_seconds) {
        stalls[event.target].push_back(event);
      }
    }
    for (auto& [worker, events] : stalls) {
      std::sort(events.begin(), events.end(),
                [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                  return a.iteration < b.iteration;
                });
      const auto crash = first_crash.find(worker);
      const std::int64_t crash_at = crash == first_crash.end() ? -1 : crash->second;
      const std::int64_t drain_at =
          plan != nullptr ? plan->drain_iteration(worker) : -1;
      int violations = 0;
      for (const fault::FaultEvent& stall : events) {
        // A crashed, drained, or evicted worker stalls no more.
        if (crash_at >= 0 && stall.iteration >= crash_at) break;
        if (drain_at >= 0 && stall.iteration >= drain_at) break;
        ++violations;
        if (violations >= policy.evict_after_violations) {
          transitions.push_back({MembershipAction::kEvict, worker, stall.iteration});
          break;
        }
        transitions.push_back({MembershipAction::kQuarantine, worker, stall.iteration});
        transitions.push_back(
            {MembershipAction::kReadmitContributor, worker, stall.iteration});
      }
    }
  }

  // (at_iteration, action, target): the enum is declared in tie-break order
  // (a quarantine precedes its same-iteration readmit).
  std::sort(transitions.begin(), transitions.end(),
            [](const MembershipChange& a, const MembershipChange& b) {
              if (a.at_iteration != b.at_iteration) return a.at_iteration < b.at_iteration;
              if (a.action != b.action) return a.action < b.action;
              return a.target < b.target;
            });

  std::vector<MembershipChange> schedule;
  schedule.reserve(transitions.size() * 2);
  for (const MembershipChange& change : transitions) {
    schedule.push_back(change);
    if (change.action == MembershipAction::kWorkerJoin ||
        change.action == MembershipAction::kWorkerDrain ||
        change.action == MembershipAction::kEvict) {
      schedule.push_back(
          {MembershipAction::kShardRebalance, change.target, change.at_iteration});
    }
  }
  return schedule;
}

std::uint64_t membership_fingerprint(std::span<const MembershipChange> changes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t word) {
    hash ^= word;
    hash *= 0x100000001b3ULL;
  };
  for (const MembershipChange& change : changes) {
    mix(static_cast<std::uint64_t>(change.action));
    mix(static_cast<std::uint64_t>(change.target));
    mix(static_cast<std::uint64_t>(change.at_iteration));
  }
  return hash;
}

std::string describe(std::span<const MembershipChange> changes) {
  std::string out;
  char line[128];
  for (const MembershipChange& change : changes) {
    std::snprintf(line, sizeof(line), "%s target=%d iter=%lld\n",
                  to_string(change.action), change.target,
                  static_cast<long long>(change.at_iteration));
    out += line;
  }
  return out;
}

void MembershipExecution::record(MembershipAction action, int target) {
  switch (action) {
    case MembershipAction::kWorkerJoin: ++joins[target]; break;
    case MembershipAction::kWorkerDrain: ++drains[target]; break;
    case MembershipAction::kQuarantine: ++quarantines[target]; break;
    case MembershipAction::kReadmitContributor: ++readmits[target]; break;
    case MembershipAction::kEvict: ++evicts[target]; break;
    case MembershipAction::kShardRebalance: break;  // derived from its trigger
  }
}

int MembershipExecution::count(MembershipAction action, int target) const {
  const std::map<int, int>* counts = nullptr;
  switch (action) {
    case MembershipAction::kWorkerJoin: counts = &joins; break;
    case MembershipAction::kWorkerDrain: counts = &drains; break;
    case MembershipAction::kQuarantine: counts = &quarantines; break;
    case MembershipAction::kReadmitContributor: counts = &readmits; break;
    case MembershipAction::kEvict: counts = &evicts; break;
    case MembershipAction::kShardRebalance: return 0;
  }
  const auto it = counts->find(target);
  return it == counts->end() ? 0 : it->second;
}

std::vector<MembershipChange> filter_executed(std::span<const MembershipChange> planned,
                                              const MembershipExecution& executed) {
  MembershipExecution consumed;
  std::vector<MembershipChange> kept;
  bool last_transition_kept = false;
  for (const MembershipChange& change : planned) {
    if (change.action == MembershipAction::kShardRebalance) {
      // A rebalance executed exactly when the membership change it trails
      // in the planned list did.
      if (last_transition_kept) kept.push_back(change);
      continue;
    }
    const bool keep = consumed.count(change.action, change.target) <
                      executed.count(change.action, change.target);
    if (keep) {
      consumed.record(change.action, change.target);
      kept.push_back(change);
    }
    last_transition_kept = keep;
  }
  return kept;
}

std::vector<int> shard_assignments(std::span<const int> members_sorted, int shards) {
  if (shards < 1) throw std::invalid_argument("shard_assignments: shards must be >= 1");
  const int n = static_cast<int>(members_sorted.size());
  std::vector<int> assignment(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    assignment[static_cast<std::size_t>(i)] = static_cast<int>(
        (static_cast<std::int64_t>(i) * shards) / std::max(1, n));
  }
  return assignment;
}

MembershipService::MembershipService(int initial_workers, int capacity, int shards) {
  if (initial_workers < 1) {
    throw std::invalid_argument("MembershipService: initial_workers must be >= 1");
  }
  if (capacity < initial_workers) {
    throw std::invalid_argument("MembershipService: capacity < initial_workers");
  }
  if (shards < 1) throw std::invalid_argument("MembershipService: shards must be >= 1");
  std::scoped_lock lock(mutex_);
  capacity_ = capacity;
  shards_ = shards;
  status_.assign(static_cast<std::size_t>(capacity), Status::kAbsent);
  for (int w = 0; w < initial_workers; ++w) {
    status_[static_cast<std::size_t>(w)] = Status::kActive;
  }
  home_shard_.assign(static_cast<std::size_t>(capacity), 0);
  const std::vector<int> members = members_locked();
  const std::vector<int> assignment = shard_assignments(members, shards_);
  for (std::size_t i = 0; i < members.size(); ++i) {
    home_shard_[static_cast<std::size_t>(members[i])] = assignment[i];
  }
}

std::vector<int> MembershipService::members_locked() const SHMCAFFE_REQUIRES(mutex_) {
  SHMCAFFE_ASSERT_HELD(mutex_);
  std::vector<int> members;
  for (int w = 0; w < capacity_; ++w) {
    if (status_[static_cast<std::size_t>(w)] == Status::kActive) members.push_back(w);
  }
  return members;
}

void MembershipService::rebalance_locked(int trigger) SHMCAFFE_REQUIRES(mutex_) {
  SHMCAFFE_ASSERT_HELD(mutex_);
  (void)trigger;
  const std::vector<int> members = members_locked();
  std::vector<int> next(static_cast<std::size_t>(capacity_), 0);
  if (!members.empty()) {
    const std::vector<int> assignment = shard_assignments(members, shards_);
    for (std::size_t i = 0; i < members.size(); ++i) {
      next[static_cast<std::size_t>(members[i])] = assignment[i];
    }
  }
  for (int w = 0; w < capacity_; ++w) {
    if (next[static_cast<std::size_t>(w)] != home_shard_[static_cast<std::size_t>(w)]) {
      ++reassignments_;
    }
  }
  home_shard_ = std::move(next);
  ++rebalances_;
}

MembershipEpoch MembershipService::join(int worker, std::int64_t at_iteration) {
  (void)at_iteration;
  std::scoped_lock lock(mutex_);
  if (worker < 0 || worker >= capacity_) return epoch_;
  Status& status = status_[static_cast<std::size_t>(worker)];
  if (status == Status::kActive) return epoch_;  // idempotent
  status = Status::kActive;
  epoch_ = recovery::next_service_epoch(epoch_);
  joined_.push_back(worker);
  execution_.record(MembershipAction::kWorkerJoin, worker);
  rebalance_locked(worker);
  return epoch_;
}

MembershipEpoch MembershipService::drain(int worker, std::int64_t at_iteration) {
  (void)at_iteration;
  std::scoped_lock lock(mutex_);
  if (worker < 0 || worker >= capacity_) return epoch_;
  Status& status = status_[static_cast<std::size_t>(worker)];
  if (status != Status::kActive) return epoch_;
  status = Status::kDrained;
  epoch_ = recovery::next_service_epoch(epoch_);
  drained_.push_back(worker);
  execution_.record(MembershipAction::kWorkerDrain, worker);
  rebalance_locked(worker);
  return epoch_;
}

MembershipEpoch MembershipService::evict(int worker, std::int64_t at_iteration) {
  (void)at_iteration;
  std::scoped_lock lock(mutex_);
  if (worker < 0 || worker >= capacity_) return epoch_;
  Status& status = status_[static_cast<std::size_t>(worker)];
  if (status != Status::kActive) return epoch_;
  status = Status::kEvicted;
  epoch_ = recovery::next_service_epoch(epoch_);
  evicted_.push_back(worker);
  execution_.record(MembershipAction::kEvict, worker);
  rebalance_locked(worker);
  return epoch_;
}

void MembershipService::quarantine(int worker, std::int64_t at_iteration) {
  (void)at_iteration;
  std::scoped_lock lock(mutex_);
  if (worker < 0 || worker >= capacity_) return;
  ++quarantine_events_;
  execution_.record(MembershipAction::kQuarantine, worker);
}

void MembershipService::readmit_contributor(int worker, std::int64_t at_iteration) {
  (void)at_iteration;
  std::scoped_lock lock(mutex_);
  if (worker < 0 || worker >= capacity_) return;
  execution_.record(MembershipAction::kReadmitContributor, worker);
}

MembershipEpoch MembershipService::epoch() const {
  std::scoped_lock lock(mutex_);
  return epoch_;
}

int MembershipService::home_shard(int worker) const {
  std::scoped_lock lock(mutex_);
  if (worker < 0 || worker >= capacity_) return 0;
  return home_shard_[static_cast<std::size_t>(worker)];
}

std::vector<int> MembershipService::members() const {
  std::scoped_lock lock(mutex_);
  return members_locked();
}

std::vector<int> MembershipService::joined() const {
  std::scoped_lock lock(mutex_);
  std::vector<int> out = joined_;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> MembershipService::drained() const {
  std::scoped_lock lock(mutex_);
  std::vector<int> out = drained_;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> MembershipService::evicted() const {
  std::scoped_lock lock(mutex_);
  std::vector<int> out = evicted_;
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t MembershipService::rebalances() const {
  std::scoped_lock lock(mutex_);
  return rebalances_;
}

std::int64_t MembershipService::reassignments() const {
  std::scoped_lock lock(mutex_);
  return reassignments_;
}

std::int64_t MembershipService::quarantine_events() const {
  std::scoped_lock lock(mutex_);
  return quarantine_events_;
}

MembershipExecution MembershipService::execution() const {
  std::scoped_lock lock(mutex_);
  return execution_;
}

}  // namespace shmcaffe::elastic
