// Elastic membership for a live training run (ROADMAP item 4).
//
// The recovery layer (PR 3) can only *replace* a crashed worker under a
// fixed topology.  This layer generalises that into full membership
// elasticity: workers may *cold-join* a running SEASGD session (attach to
// the SMB, adopt W_g, take a fresh progress-board slot), *drain* out of it
// voluntarily (flush the pending increment, leave cleanly), or be *evicted*
// after repeated straggler violations — all without restarting the run.
//
// Three pieces, mirroring recovery/schedule.h's planned-vs-executed design:
//
//   * MembershipPlan — the deterministic join/drain schedule a run follows
//     (iteration-indexed, like a FaultPlan).  Both training stacks consume
//     the same plan.
//   * membership_schedule() — a pure function from (plan, fault plan,
//     policy) to the ordered list of membership changes the run *will*
//     execute: joins, drains, straggler quarantine/readmit/evict chains
//     (derived from injected stalls long enough to trip the detector), and
//     the shard rebalance that follows every membership change.  Both
//     stacks filter this planned list down to the changes they *actually*
//     executed and hash it (membership_fingerprint), so "functional == sim"
//     is a single integer comparison — the style of PR 3's
//     recovery_fingerprint.
//   * MembershipService — the run-time registry both stacks drive: it owns
//     the monotonic *membership epoch* (layered on recovery/epoch.h's
//     ServiceEpoch fencing: every change of the member set bumps it, so
//     shard routing cached under an older epoch is stale by construction),
//     the deterministic worker->home-shard map that rebalances on every
//     membership change, and the executed-change counts the fingerprint
//     filter consumes.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "recovery/epoch.h"

namespace shmcaffe::fault {
class FaultPlan;
}  // namespace shmcaffe::fault

namespace shmcaffe::elastic {

/// Generation counter of the member set.  A direct layering on the
/// replicated-SMB service epoch: compare only through recovery/epoch.h's
/// helpers (the `no-naked-epoch` lint rule applies here too).
using MembershipEpoch = recovery::ServiceEpoch;

// --- the plan ---------------------------------------------------------------

enum class MembershipEventKind : std::uint8_t {
  kJoin,   ///< slot `worker` cold-joins once board max-iterations reaches `at_iteration`
  kDrain,  ///< worker `worker` drains at the start of its own iteration `at_iteration`
};

[[nodiscard]] const char* to_string(MembershipEventKind kind);

/// One planned membership event.  Join slots are explicit worker ids at or
/// beyond the initial worker count — a cold join never reuses a dead rank's
/// slot (the board gives it a fresh slot under a new incarnation instead).
struct MembershipEvent {
  MembershipEventKind kind = MembershipEventKind::kJoin;
  int worker = -1;
  std::int64_t at_iteration = -1;

  friend bool operator==(const MembershipEvent&, const MembershipEvent&) = default;
};

/// An ordered, deterministic join/drain schedule (the membership analogue
/// of fault::FaultPlan).  Plain container; both stacks consume one instance.
class MembershipPlan {
 public:
  MembershipPlan() = default;
  explicit MembershipPlan(std::vector<MembershipEvent> events)
      : events_(std::move(events)) {}

  void add(MembershipEvent event) { events_.push_back(event); }
  [[nodiscard]] const std::vector<MembershipEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Join events sorted by (at_iteration, worker); drains likewise.
  [[nodiscard]] std::vector<MembershipEvent> joins() const;
  [[nodiscard]] std::vector<MembershipEvent> drains() const;

  /// The iteration at which `worker` drains, or -1 if it never does.
  [[nodiscard]] std::int64_t drain_iteration(int worker) const;

  /// Board capacity a run honouring this plan needs: the initial worker
  /// count plus every join slot (max join slot + 1 when that is larger).
  [[nodiscard]] int capacity(int initial_workers) const;

 private:
  std::vector<MembershipEvent> events_;
};

// --- the policy -------------------------------------------------------------

/// Straggler-quarantine bounds and elastic-transition latencies.  The
/// detector projects a silent worker's staleness as (silence seconds) x
/// (mean live iteration rate): raw iteration staleness cannot exceed the
/// trainer's max_iteration_skew while the survivors pace against the
/// straggler, so the board extrapolates from heartbeat age instead.
struct MembershipPolicy {
  /// Master switch for the straggler detector (quarantine + eviction).
  /// Off by default: fault-injection suites rely on stalls being survived
  /// or fenced by the heartbeat sweep alone.
  bool straggler_detection = false;
  /// Projected staleness (iterations) beyond which an alive worker is
  /// quarantined: demoted to non-contributing until it catches up.
  double staleness_bound_iterations = 100.0;
  /// Projected staleness below which a quarantined worker is readmitted as
  /// a contributor.
  double readmit_staleness_iterations = 10.0;
  /// Minimum heartbeat silence before the projection is trusted at all —
  /// an absolute guard against quarantining a worker over scheduler noise.
  double min_silence_seconds = 0.1;
  /// Planning bound: an injected stall at least this long is expected to
  /// trip the detector (membership_schedule derives planned quarantines
  /// from the fault plan with it).
  double quarantine_stall_seconds = 0.35;
  /// The Nth staleness violation evicts instead of quarantining.
  int evict_after_violations = 3;

  // --- timing model (sim only; the functional stack pays real cost) ------
  double join_delay_seconds = 0.25;   ///< spawn + SMB attach before catch-up
  double drain_flush_seconds = 0.05;  ///< final increment flush on drain
  double rebalance_seconds = 0.01;    ///< shard-map recompute + adoption
};

// --- planned / executed changes ---------------------------------------------

enum class MembershipAction : std::uint8_t {
  kWorkerJoin,          ///< slot `target` cold-joined the run
  kWorkerDrain,         ///< worker `target` drained voluntarily
  kQuarantine,          ///< worker `target` demoted to non-contributing
  kReadmitContributor,  ///< quarantined worker `target` caught up and readmitted
  kEvict,               ///< worker `target` evicted after repeated violations
  kShardRebalance,      ///< home-shard map recomputed after a membership change
};

[[nodiscard]] const char* to_string(MembershipAction action);

/// One planned (or executed) membership change.  `at_iteration` is the
/// planned trigger iteration (board max-iterations for joins, the worker's
/// own iteration for drains and stall-derived quarantines); rebalances
/// inherit it from the membership change that triggered them.
struct MembershipChange {
  MembershipAction action = MembershipAction::kWorkerJoin;
  int target = -1;
  std::int64_t at_iteration = -1;

  friend bool operator==(const MembershipChange&, const MembershipChange&) = default;
};

/// Expands (plan, faults, policy) into the ordered membership changes the
/// run will execute.  Joins and drains come from the plan; quarantine /
/// readmit / evict chains are derived from the fault plan's worker stalls of
/// at least policy.quarantine_stall_seconds (violation N evicts when N
/// reaches policy.evict_after_violations; stalls after a worker's earliest
/// crash, after its drain, or after its eviction derive nothing — the
/// worker is gone).  Every join / drain / evict is followed by its
/// kShardRebalance.  Deterministically ordered by (at_iteration, action,
/// target); both stacks filter this list by what actually ran.
[[nodiscard]] SHMCAFFE_DETERMINISTIC SHMCAFFE_NONBLOCKING std::vector<MembershipChange>
membership_schedule(const MembershipPlan* plan, const fault::FaultPlan* faults,
                    const MembershipPolicy& policy, int initial_workers);

/// Order-sensitive FNV-1a digest over (action, target, at_iteration) —
/// identical for a planned schedule and a faithfully executed one.
[[nodiscard]] SHMCAFFE_DETERMINISTIC SHMCAFFE_NONBLOCKING std::uint64_t membership_fingerprint(
    std::span<const MembershipChange> changes);

/// Human-readable one-line-per-change rendering.
[[nodiscard]] std::string describe(std::span<const MembershipChange> changes);

// --- executed-change filtering ----------------------------------------------

/// Per-(action, worker) counts of the membership changes a run actually
/// executed; MembershipService maintains one, and the sim twin fills an
/// identical one, so both stacks run the same filter.
struct MembershipExecution {
  std::map<int, int> joins;
  std::map<int, int> drains;
  std::map<int, int> quarantines;
  std::map<int, int> readmits;
  std::map<int, int> evicts;

  void record(MembershipAction action, int target);
  [[nodiscard]] int count(MembershipAction action, int target) const;
};

/// Keeps the planned changes that actually executed, in planned order: each
/// planned (action, target) consumes one executed count; a kShardRebalance
/// is kept exactly when the membership change immediately preceding it in
/// the planned list was kept.
[[nodiscard]] std::vector<MembershipChange> filter_executed(
    std::span<const MembershipChange> planned, const MembershipExecution& executed);

// --- shard assignment -------------------------------------------------------

/// Deterministic balanced home-shard map over the sorted live member list:
/// member i of n gets shard (i * shards) / n (contiguous blocks, so a
/// single join or leave reassigns the fewest workers).  A worker's home
/// shard is where its SEASGD fan-out *starts* — rotating the start spreads
/// concurrent exchanges across the SMB shard ensembles.
[[nodiscard]] SHMCAFFE_NONBLOCKING std::vector<int> shard_assignments(
    std::span<const int> members_sorted, int shards);

// --- the run-time registry --------------------------------------------------

/// Thread-safe membership registry both stacks drive as changes execute.
/// Owns the membership epoch, the home-shard map (rebalanced on every
/// membership change), the executed-change counts, and the counters the
/// results report.  All transitions are idempotent per (worker, state):
/// joining an active worker or draining a drained one is a no-op.
class MembershipService {
 public:
  /// `initial_workers` ranks are active from the start; slots in
  /// [initial_workers, capacity) are absent until they join.
  MembershipService(int initial_workers, int capacity, int shards);

  /// Membership changes; each bumps the epoch and rebalances the
  /// home-shard map.  Returns the epoch after the change.
  MembershipEpoch join(int worker, std::int64_t at_iteration);
  MembershipEpoch drain(int worker, std::int64_t at_iteration);
  MembershipEpoch evict(int worker, std::int64_t at_iteration);

  /// Straggler transitions; quarantine does NOT change the member set (the
  /// worker is demoted, not removed), so the epoch and shard map hold.
  void quarantine(int worker, std::int64_t at_iteration);
  void readmit_contributor(int worker, std::int64_t at_iteration);

  [[nodiscard]] MembershipEpoch epoch() const;
  /// The shard index worker `worker`'s SEASGD fan-out starts at (0 for
  /// workers outside the member set).
  [[nodiscard]] int home_shard(int worker) const;
  [[nodiscard]] std::vector<int> members() const;  ///< active ranks, ascending

  // --- result counters ----------------------------------------------------
  [[nodiscard]] std::vector<int> joined() const;   ///< ascending
  [[nodiscard]] std::vector<int> drained() const;  ///< ascending
  [[nodiscard]] std::vector<int> evicted() const;  ///< ascending
  /// Home-shard map recomputations (one per membership change).
  [[nodiscard]] std::int64_t rebalances() const;
  /// Worker->shard assignments that changed across all rebalances.
  [[nodiscard]] std::int64_t reassignments() const;
  [[nodiscard]] std::int64_t quarantine_events() const;
  [[nodiscard]] MembershipExecution execution() const;

 private:
  enum class Status : std::uint8_t { kAbsent, kActive, kDrained, kEvicted };

  /// Recomputes the home-shard map after a membership change and logs the
  /// kShardRebalance; requires mutex_ held.
  void rebalance_locked(int trigger) SHMCAFFE_REQUIRES(mutex_);
  [[nodiscard]] std::vector<int> members_locked() const SHMCAFFE_REQUIRES(mutex_);

  /// Serialises every membership transition and query.  Held across pure
  /// in-memory state only (no SMB access), so it ranks between the
  /// progress-board sweep and the sharded-buffer table.
  mutable common::OrderedMutex mutex_{"elastic.membership.state",
                                      common::lockrank::kElasticMembership};
  int capacity_ SHMCAFFE_GUARDED_BY(mutex_) = 0;
  int shards_ SHMCAFFE_GUARDED_BY(mutex_) = 1;
  std::vector<Status> status_ SHMCAFFE_GUARDED_BY(mutex_);
  std::vector<int> home_shard_ SHMCAFFE_GUARDED_BY(mutex_);
  MembershipEpoch epoch_ SHMCAFFE_GUARDED_BY(mutex_) = recovery::kInitialServiceEpoch;
  std::vector<int> joined_ SHMCAFFE_GUARDED_BY(mutex_);
  std::vector<int> drained_ SHMCAFFE_GUARDED_BY(mutex_);
  std::vector<int> evicted_ SHMCAFFE_GUARDED_BY(mutex_);
  std::int64_t rebalances_ SHMCAFFE_GUARDED_BY(mutex_) = 0;
  std::int64_t reassignments_ SHMCAFFE_GUARDED_BY(mutex_) = 0;
  std::int64_t quarantine_events_ SHMCAFFE_GUARDED_BY(mutex_) = 0;
  MembershipExecution execution_ SHMCAFFE_GUARDED_BY(mutex_);
};

}  // namespace shmcaffe::elastic
