// Straggler detection math (pure, header-only).
//
// SEASGD tolerates asynchrony only while staleness stays bounded (the
// source paper's core claim; FireCaffe shows stragglers dominating the
// synchronous alternative).  The trainer's max_iteration_skew pacing makes
// *raw* iteration staleness useless as a detector signal: once a worker
// goes silent, every survivor parks at `skew` iterations ahead of it and
// the gap never widens.  The detector therefore projects staleness from
// heartbeat silence instead:
//
//   projected = (seconds since the worker's last heartbeat)
//             x (mean iteration rate of the live contributors)
//
// i.e. "how many iterations the cohort will have run past this worker by
// now".  Per-worker iteration rates are EWMA-smoothed on the progress
// board (ProgressBoard::report folds each report into the worker's rate
// slot).  Verdicts:
//
//   * alive + projected > staleness_bound (and silence past the absolute
//     noise guard) -> one violation: quarantine, or evict on the Nth;
//   * quarantined + projected back under the readmit bound (the worker
//     reported recently, so its silence collapsed) -> readmit.
//
// ProgressBoard::sweep_stragglers drives these over the shared board; the
// functions themselves are pure so the policy arithmetic is unit-testable
// without a board.
#pragma once

#include "elastic/membership.h"

namespace shmcaffe::elastic {

/// One EWMA step; a zero `prev` means "no estimate yet" and adopts the
/// sample outright.
[[nodiscard]] inline double ewma(double prev, double sample, double alpha) {
  if (prev <= 0.0) return sample;
  return alpha * sample + (1.0 - alpha) * prev;
}

/// Iterations the cohort runs past a worker silent for `silence_seconds`.
[[nodiscard]] inline double projected_staleness(double silence_seconds,
                                                double mean_live_rate) {
  if (silence_seconds <= 0.0 || mean_live_rate <= 0.0) return 0.0;
  return silence_seconds * mean_live_rate;
}

/// What a straggler sweep decided about one worker.
enum class StragglerVerdict : std::uint8_t {
  kNone,
  kQuarantine,  ///< demote to non-contributing
  kReadmit,     ///< caught up: restore as contributor
  kEvict,       ///< repeated violations: remove from the membership
};

struct StragglerTransition {
  int worker = -1;
  StragglerVerdict verdict = StragglerVerdict::kNone;

  friend bool operator==(const StragglerTransition&, const StragglerTransition&) = default;
};

/// Verdict for an *alive* worker: `prior_violations` staleness violations
/// already on record (the pending one is counted on top).
[[nodiscard]] inline StragglerVerdict judge_alive(double silence_seconds,
                                                  double mean_live_rate,
                                                  int prior_violations,
                                                  const MembershipPolicy& policy) {
  if (silence_seconds <= policy.min_silence_seconds) return StragglerVerdict::kNone;
  if (projected_staleness(silence_seconds, mean_live_rate) <=
      policy.staleness_bound_iterations) {
    return StragglerVerdict::kNone;
  }
  return prior_violations + 1 >= policy.evict_after_violations
             ? StragglerVerdict::kEvict
             : StragglerVerdict::kQuarantine;
}

/// Verdict for a *quarantined* worker: readmit once its projected staleness
/// collapses under the readmit bound (a fresh heartbeat does exactly that).
[[nodiscard]] inline StragglerVerdict judge_quarantined(double silence_seconds,
                                                        double mean_live_rate,
                                                        const MembershipPolicy& policy) {
  return projected_staleness(silence_seconds, mean_live_rate) <=
                 policy.readmit_staleness_iterations
             ? StragglerVerdict::kReadmit
             : StragglerVerdict::kNone;
}

}  // namespace shmcaffe::elastic
